"""Cross-backend differential suite for batched cell execution.

Three independent implementations of the same cell-query semantics —
numpy score filters (memory), generated SQL (sqlite), and marginal
histograms (histogram) — each with a serial path and a native batched
path, plus the base-class thread-pool fallback. This module drives all
of them over hypothesis-generated grids and asserts:

* batched == serial, *exactly*, per backend (the batched contract of
  ``docs/PARALLELISM.md``: bit-identical states, not approximately
  equal);
* the exact backends (memory in every mode, sqlite) agree with each
  other;
* empty cells, empty batches, empty tables, and float values all
  behave.

Aggregate values are drawn as multiples of 0.25 — exactly representable
in binary floating point — so sums are order-independent and the
bit-identical assertions cannot be defeated by legitimate
reassociation inside a backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.expand import make_traversal
from repro.core.interval import Interval
from repro.core.predicate import Direction, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.core.refined_space import RefinedSpace
from repro.engine.backends import EvaluationLayer
from repro.engine.catalog import Database
from repro.engine.expression import col
from repro.engine.histogram_backend import HistogramBackend
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sqlite_backend import SQLiteBackend

ALL_AGGREGATES = ("COUNT", "SUM", "MIN", "MAX", "AVG")
#: The histogram layer estimates; only these are defined for it.
HISTOGRAM_AGGREGATES = ("COUNT", "SUM", "AVG")


def _database(seed: int, n: int) -> Database:
    """Random two-column table; values are exact binary fractions."""
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table(
        "t",
        {
            "x": np.floor(rng.uniform(0, 400, n)) / 4.0,
            "y": np.floor(rng.uniform(0, 400, n)) / 4.0,
            "v": np.floor(rng.uniform(-200, 200, n)) / 4.0,
        },
    )
    return database


def _query(aggregate: str, bounds=(30.0, 30.0)) -> Query:
    predicates = [
        SelectPredicate(
            name=f"p{i}",
            expr=col("t." + column),
            interval=Interval(0.0, bound),
            direction=Direction.UPPER,
            denominator=100.0,
        )
        for i, (column, bound) in enumerate(zip(("x", "y"), bounds))
    ]
    agg = get_aggregate(aggregate)
    attr = col("t.v") if agg.needs_attribute else None
    constraint = AggregateConstraint(
        AggregateSpec(agg, attr), ConstraintOp.EQ, 100.0
    )
    return Query.build("q", ("t",), predicates, constraint)


def _grid_coords(space: RefinedSpace) -> list[tuple[int, ...]]:
    """Every in-bounds coordinate, in traversal order."""
    return list(make_traversal(space, "lp"))


class _NoBatchWrapper(EvaluationLayer):
    """Delegating layer that hides the inner backend's native batch,
    forcing ``execute_cells`` through the base-class serial loop or
    thread pool — the path third-party backends without a bulk
    implementation take."""

    def __init__(self, inner: EvaluationLayer) -> None:
        super().__init__()
        self._inner = inner

    def prepare(self, query, dim_caps=None):
        return self._inner.prepare(query, dim_caps)

    def useful_max_scores(self, prepared):
        return self._inner.useful_max_scores(prepared)

    def execute_cell(self, prepared, space, coords):
        self._count_query("cell")
        return self._inner.execute_cell(prepared, space, coords)

    def execute_box(self, prepared, scores):
        self._count_query("box")
        return self._inner.execute_box(prepared, scores)


# ----------------------------------------------------------------------
# Batched == serial, per backend, bit-identical
# ----------------------------------------------------------------------
class TestBatchedMatchesSerial:
    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    @pytest.mark.parametrize("backend_name", ["memory", "sqlite"])
    def test_exact_backends(self, backend_name, aggregate):
        database = _database(seed=11, n=180)
        query = _query(aggregate)
        make = MemoryBackend if backend_name == "memory" else SQLiteBackend
        serial = make(database)
        batched = make(database)
        prepared_s = serial.prepare(query, [100.0, 100.0])
        prepared_b = batched.prepare(query, [100.0, 100.0])
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        coords = _grid_coords(space)
        states_b = batched.execute_cells(prepared_b, space, coords)
        states_s = [
            serial.execute_cell(prepared_s, space, c) for c in coords
        ]
        assert states_b == states_s
        assert batched.stats.batches == 1
        assert batched.stats.batched_cells == len(coords)
        assert batched.stats.cell_queries == serial.stats.cell_queries

    @pytest.mark.parametrize("aggregate", HISTOGRAM_AGGREGATES)
    def test_histogram_backend(self, aggregate):
        database = _database(seed=12, n=180)
        query = _query(aggregate)
        serial = HistogramBackend(database)
        batched = HistogramBackend(database)
        prepared_s = serial.prepare(query, [100.0, 100.0])
        prepared_b = batched.prepare(query, [100.0, 100.0])
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        coords = _grid_coords(space)
        states_b = batched.execute_cells(prepared_b, space, coords)
        states_s = [
            serial.execute_cell(prepared_s, space, c) for c in coords
        ]
        assert states_b == states_s
        assert batched.stats.batches == 1

    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    @pytest.mark.parametrize("mode", ["vectorized_grid", "indexed"])
    def test_memory_accelerator_modes(self, mode, aggregate):
        database = _database(seed=13, n=180)
        query = _query(aggregate)
        kwargs = {mode: True}
        serial = MemoryBackend(database, **kwargs)
        batched = MemoryBackend(database, **kwargs)
        prepared_s = serial.prepare(query, [100.0, 100.0])
        prepared_b = batched.prepare(query, [100.0, 100.0])
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        coords = _grid_coords(space)
        states_b = batched.execute_cells(prepared_b, space, coords)
        states_s = [
            serial.execute_cell(prepared_s, space, c) for c in coords
        ]
        assert states_b == states_s

    @pytest.mark.parametrize("parallelism", [1, 4])
    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    def test_thread_pool_fallback(self, aggregate, parallelism):
        """The base-class loop/pool merges results in input order."""
        database = _database(seed=14, n=150)
        query = _query(aggregate)
        serial = MemoryBackend(database)
        wrapped = _NoBatchWrapper(MemoryBackend(database))
        prepared_s = serial.prepare(query, [100.0, 100.0])
        prepared_w = wrapped.prepare(query, [100.0, 100.0])
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        coords = _grid_coords(space)
        states_w = wrapped.execute_cells(
            prepared_w, space, coords, parallelism=parallelism
        )
        states_s = [
            serial.execute_cell(prepared_s, space, c) for c in coords
        ]
        assert states_w == states_s
        if parallelism > 1:
            assert wrapped.stats.parallel_cells == len(coords)
        else:
            assert wrapped.stats.parallel_cells == 0


# ----------------------------------------------------------------------
# Cross-backend agreement of the batched paths
# ----------------------------------------------------------------------
class TestCrossBackendAgreement:
    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    def test_memory_and_sqlite_batches_agree(self, aggregate):
        database = _database(seed=15, n=200)
        query = _query(aggregate)
        memory = MemoryBackend(database)
        sqlite = SQLiteBackend(database)
        prepared_m = memory.prepare(query, [100.0, 100.0])
        prepared_q = sqlite.prepare(query, [100.0, 100.0])
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        coords = _grid_coords(space)
        states_m = memory.execute_cells(prepared_m, space, coords)
        states_q = sqlite.execute_cells(prepared_q, space, coords)
        for c, m, q in zip(coords, states_m, states_q):
            assert m == pytest.approx(q, rel=1e-9, abs=1e-9), c

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n=st.integers(min_value=0, max_value=120),
        aggregate=st.sampled_from(ALL_AGGREGATES),
        bound_x=st.floats(min_value=5.0, max_value=60.0),
        bound_y=st.floats(min_value=5.0, max_value=60.0),
        gamma=st.floats(min_value=10.0, max_value=40.0),
    )
    def test_random_grids(self, seed, n, aggregate, bound_x, bound_y, gamma):
        """Property: over random data, grids and aggregates, the
        batched paths of both exact backends and the serial path all
        produce the same states — including empty cells (sparse data)
        and empty tables (n == 0)."""
        database = _database(seed=seed, n=n)
        query = _query(aggregate, (bound_x, bound_y))
        memory = MemoryBackend(database)
        sqlite = SQLiteBackend(database)
        prepared_m = memory.prepare(query, [150.0, 150.0])
        prepared_q = sqlite.prepare(query, [150.0, 150.0])
        space = RefinedSpace(query, gamma, [80.0, 80.0])
        coords = _grid_coords(space)[:40]
        states_m = memory.execute_cells(prepared_m, space, coords)
        states_q = sqlite.execute_cells(prepared_q, space, coords)
        states_serial = [
            memory.execute_cell(prepared_m, space, c) for c in coords
        ]
        assert states_m == states_serial
        for c, m, q in zip(coords, states_m, states_q):
            assert m == pytest.approx(q, rel=1e-9, abs=1e-9), c


# ----------------------------------------------------------------------
# Contract edges
# ----------------------------------------------------------------------
class TestBatchContract:
    def test_empty_batch(self):
        database = _database(seed=16, n=50)
        query = _query("COUNT")
        for layer in (
            MemoryBackend(database),
            SQLiteBackend(database),
            HistogramBackend(database),
        ):
            prepared = layer.prepare(query, [100.0, 100.0])
            space = RefinedSpace(query, 20.0, [70.0, 70.0])
            before = layer.stats.snapshot()
            assert layer.execute_cells(prepared, space, []) == []
            delta = layer.stats.since(before)
            assert delta.queries_executed == 0
            assert delta.batches == 0

    def test_result_order_matches_input_order(self):
        database = _database(seed=17, n=150)
        query = _query("SUM")
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [100.0, 100.0])
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        coords = _grid_coords(space)
        reversed_coords = list(reversed(coords))
        forward = layer.execute_cells(prepared, space, coords)
        backward = layer.execute_cells(prepared, space, reversed_coords)
        assert backward == list(reversed(forward))

    def test_unrepresentable_step_boundary(self):
        """Regression (found by ``test_random_grids``): a gamma whose
        grid step is not an exact binary fraction used to land
        boundary-adjacent scores one cell off in the digitized grid —
        the float *quotient* ``s / step`` disagreed with the serial
        float-*product* predicate ``(c-1)*step < s <= c*step``."""
        database = _database(seed=0, n=17)
        query = _query("COUNT", (5.0, 5.0))
        memory = MemoryBackend(database)
        prepared = memory.prepare(query, [150.0, 150.0])
        space = RefinedSpace(query, 16.999999999999993, [80.0, 80.0])
        coords = _grid_coords(space)[:40]
        states_b = memory.execute_cells(prepared, space, coords)
        states_s = [
            memory.execute_cell(prepared, space, c) for c in coords
        ]
        assert states_b == states_s

    def test_empty_cells_get_identity_state(self):
        """Coordinates past the data's reach hold the identity state,
        exactly as a serial query over an empty region would."""
        database = _database(seed=18, n=40)
        for aggregate in ALL_AGGREGATES:
            query = _query(aggregate, (1.0, 1.0))
            agg = query.constraint.spec.aggregate
            memory = MemoryBackend(database)
            sqlite = SQLiteBackend(database)
            prepared_m = memory.prepare(query, [400.0, 400.0])
            prepared_q = sqlite.prepare(query, [400.0, 400.0])
            space = RefinedSpace(query, 20.0, [390.0, 390.0])
            far = [tuple(space.max_coords)]
            assert memory.execute_cells(prepared_m, space, far) == [
                agg.identity()
            ]
            assert sqlite.execute_cells(prepared_q, space, far) == [
                agg.identity()
            ]
