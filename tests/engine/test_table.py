"""Unit tests for the columnar table."""

import numpy as np
import pytest

from repro.engine.schema import ColumnType, TableSchema
from repro.engine.table import Table
from repro.exceptions import SchemaError, UnknownColumnError


class TestFromColumns:
    def test_type_inference(self):
        table = Table.from_columns(
            "t",
            {
                "i": np.array([1, 2, 3]),
                "f": np.array([1.5, 2.5, 3.5]),
                "s": np.array(["a", "b", "c"], dtype=object),
            },
        )
        assert table.schema.column("i").ctype is ColumnType.INT
        assert table.schema.column("f").ctype is ColumnType.FLOAT
        assert table.schema.column("s").ctype is ColumnType.STR
        assert len(table) == 3

    def test_plain_lists_accepted(self):
        table = Table.from_columns("t", {"a": [1, 2], "b": [0.5, 1.5]})
        assert table.nrows == 2
        np.testing.assert_array_equal(table.column("a"), [1, 2])


class TestLoading:
    def test_load_rows_roundtrip(self):
        schema = TableSchema.build("t", a=ColumnType.INT, b=ColumnType.FLOAT)
        table = Table(schema)
        table.load_rows([(1, 1.5), (2, 2.5)])
        assert list(table.iter_rows()) == [(1, 1.5), (2, 2.5)]
        assert table.row(1) == {"a": 2, "b": 2.5}

    def test_missing_column_rejected(self):
        schema = TableSchema.build("t", a=ColumnType.INT, b=ColumnType.INT)
        table = Table(schema)
        with pytest.raises(SchemaError, match="missing"):
            table.load_columns({"a": [1]})

    def test_extra_column_rejected(self):
        schema = TableSchema.build("t", a=ColumnType.INT)
        table = Table(schema)
        with pytest.raises(SchemaError, match="unexpected"):
            table.load_columns({"a": [1], "zz": [2]})

    def test_ragged_columns_rejected(self):
        schema = TableSchema.build("t", a=ColumnType.INT, b=ColumnType.INT)
        table = Table(schema)
        with pytest.raises(SchemaError, match="ragged"):
            table.load_columns({"a": [1, 2], "b": [1]})

    def test_row_arity_mismatch_rejected(self):
        schema = TableSchema.build("t", a=ColumnType.INT, b=ColumnType.INT)
        table = Table(schema)
        with pytest.raises(SchemaError, match="arity"):
            table.load_rows([(1,)])


class TestAccess:
    def test_unknown_column(self):
        table = Table.from_columns("t", {"a": [1]})
        with pytest.raises(UnknownColumnError):
            table.column("b")

    def test_select_mask(self):
        table = Table.from_columns("t", {"a": np.arange(10)})
        filtered = table.select(table.column("a") % 2 == 0)
        assert len(filtered) == 5
        np.testing.assert_array_equal(filtered.column("a"), [0, 2, 4, 6, 8])

    def test_take_indices(self):
        table = Table.from_columns("t", {"a": np.arange(5) * 10})
        gathered = table.take(np.array([3, 0, 3]))
        np.testing.assert_array_equal(gathered["a"], [30, 0, 30])

    def test_empty_table(self):
        table = Table.from_columns("t", {"a": []})
        assert len(table) == 0
        assert list(table.iter_rows()) == []
