"""Unit tests for the database catalog."""

import numpy as np
import pytest

from repro.engine.catalog import Database
from repro.engine.table import Table
from repro.exceptions import SchemaError, UnknownTableError


class TestRegistration:
    def test_create_and_lookup(self):
        database = Database()
        database.create_table("t", {"a": [1, 2, 3]})
        assert database.has_table("t")
        assert "t" in database
        assert len(database.table("t")) == 3

    def test_duplicate_rejected(self):
        database = Database()
        database.create_table("t", {"a": [1]})
        with pytest.raises(SchemaError):
            database.add_table(Table.from_columns("t", {"a": [1]}))

    def test_unknown_table(self):
        database = Database()
        with pytest.raises(UnknownTableError):
            database.table("missing")

    def test_drop(self):
        database = Database()
        database.create_table("t", {"a": [1]})
        database.drop_table("t")
        assert not database.has_table("t")
        with pytest.raises(UnknownTableError):
            database.drop_table("t")

    def test_table_names_sorted(self):
        database = Database()
        database.create_table("zeta", {"a": [1]})
        database.create_table("alpha", {"a": [1]})
        assert database.table_names == ["alpha", "zeta"]

    def test_iteration(self):
        database = Database()
        database.create_table("a", {"x": [1]})
        database.create_table("b", {"x": [1, 2]})
        assert {table.name for table in database} == {"a", "b"}


class TestStats:
    def test_column_stats_cached_and_correct(self):
        database = Database()
        database.create_table("t", {"a": np.arange(100, dtype=np.float64)})
        stats = database.column_stats("t", "a")
        assert stats.min_value == 0.0
        assert stats.max_value == 99.0
        assert stats.count == 100
        assert stats.ndv == 100
        # Cached object identity on second access.
        assert database.column_stats("t", "a") is stats

    def test_stats_unknown_table(self):
        database = Database()
        with pytest.raises(UnknownTableError):
            database.stats("nope")
