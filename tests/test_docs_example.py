"""Every number in docs/ALGORITHM.md, asserted against the code."""

import numpy as np
import pytest

from repro import (
    Acquire,
    AcquireConfig,
    Database,
    Interval,
    MemoryBackend,
    Query,
    SelectPredicate,
    col,
)
from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.expand import LpBestFirstTraversal
from repro.core.explore import Explorer
from repro.core.predicate import Direction
from repro.core.query import AggregateConstraint, ConstraintOp
from repro.core.refined_space import RefinedSpace


@pytest.fixture()
def setup():
    db = Database()
    db.create_table(
        "sales",
        {
            "price": np.array([5.0, 8, 12, 14, 18, 22, 26, 30]),
            "weight": np.array([2.0, 9, 4, 11, 6, 13, 8, 15]),
        },
    )
    predicates = [
        SelectPredicate(
            name="price_le",
            expr=col("sales.price"),
            interval=Interval(0, 10),
            direction=Direction.UPPER,
            denominator=40.0,
        ),
        SelectPredicate(
            name="weight_le",
            expr=col("sales.weight"),
            interval=Interval(0, 5),
            direction=Direction.UPPER,
            denominator=20.0,
        ),
    ]
    constraint = AggregateConstraint(
        AggregateSpec(get_aggregate("COUNT")), ConstraintOp.EQ, 6
    )
    query = Query.build("walkthrough", ("sales",), predicates, constraint)
    return db, query


DOCUMENTED_SCORES = [
    (-12.5, -15.0),
    (-5.0, 20.0),
    (5.0, -5.0),
    (10.0, 30.0),
    (20.0, 5.0),
    (30.0, 40.0),
    (40.0, 15.0),
    (50.0, 50.0),
]

DOCUMENTED_CELLS = {
    (0, 0): 1, (0, 1): 1, (0, 2): 0, (0, 3): 0,
    (1, 0): 1, (1, 1): 1, (1, 2): 1, (1, 3): 0,
    (2, 0): 0, (2, 1): 1, (2, 2): 1, (2, 3): 0,
    (3, 0): 0, (3, 1): 0, (3, 2): 0, (3, 3): 1,
}

DOCUMENTED_BLOCKS = {
    (0, 0): 1,
    (0, 1): 2, (1, 0): 2,
    (0, 2): 2, (1, 1): 4, (2, 0): 2,
    (0, 3): 2, (1, 2): 5, (2, 1): 5, (3, 0): 2,
}


class TestWalkthroughNumbers:
    def test_signed_scores_table(self, setup):
        db, query = setup
        layer = MemoryBackend(db)
        prepared = layer.prepare(query, [100.0, 100.0])
        scores = prepared.candidate.scores
        assert scores.shape == (8, 2)
        for row, documented in enumerate(DOCUMENTED_SCORES):
            assert tuple(scores[row]) == pytest.approx(documented)

    def test_grid_geometry(self, setup):
        db, query = setup
        space = RefinedSpace(query, gamma=40.0, max_scores=[50.0, 50.0])
        assert space.step == 20.0
        assert space.max_coords == (3, 3)

    def test_cell_matrix(self, setup):
        db, query = setup
        layer = MemoryBackend(db)
        prepared = layer.prepare(query, [100.0, 100.0])
        space = RefinedSpace(query, gamma=40.0, max_scores=[50.0, 50.0])
        for coords, documented in DOCUMENTED_CELLS.items():
            count = layer.execute_cell(prepared, space, coords)[0]
            assert count == documented, coords

    def test_block_counts_via_recurrence(self, setup):
        db, query = setup
        layer = MemoryBackend(db)
        prepared = layer.prepare(query, [100.0, 100.0])
        space = RefinedSpace(query, gamma=40.0, max_scores=[50.0, 50.0])
        explorer = Explorer(
            layer, prepared, space, query.constraint.spec.aggregate
        )
        for coords in LpBestFirstTraversal(space):
            value = explorer.compute_aggregate(coords)
            if coords in DOCUMENTED_BLOCKS:
                assert value == DOCUMENTED_BLOCKS[coords], coords

    def test_delta_020_answers_in_layer_60(self, setup):
        db, query = setup
        result = Acquire(MemoryBackend(db)).run(
            query,
            AcquireConfig(gamma=40.0, delta=0.20,
                          repartition_iterations=0),
        )
        assert result.satisfied
        assert result.original_value == 1.0
        answer_coords = sorted(a.coords for a in result.answers)
        assert answer_coords == [(1, 2), (2, 1)]
        for answer in result.answers:
            assert answer.aggregate_value == 5
            assert answer.qscore == 60.0
            assert answer.error == pytest.approx(1 / 6)
        # Exactly the 10 grid queries of layers 0..60 were examined.
        assert result.stats.grid_queries_examined == 10

    def test_documented_refined_bounds(self, setup):
        db, query = setup
        result = Acquire(MemoryBackend(db)).run(
            query,
            AcquireConfig(gamma=40.0, delta=0.20,
                          repartition_iterations=0),
        )
        by_coords = {a.coords: a for a in result.answers}
        assert by_coords[(1, 2)].intervals[0].hi == pytest.approx(18.0)
        assert by_coords[(1, 2)].intervals[1].hi == pytest.approx(13.0)
        assert by_coords[(2, 1)].intervals[0].hi == pytest.approx(26.0)
        assert by_coords[(2, 1)].intervals[1].hi == pytest.approx(9.0)

    def test_delta_zero_needs_repartitioning(self, setup):
        db, query = setup
        result = Acquire(MemoryBackend(db)).run(
            query,
            AcquireConfig(gamma=40.0, delta=0.0,
                          repartition_iterations=16),
        )
        assert result.satisfied
        best = result.best
        assert best.coords is None  # off-grid, from repartitioning
        assert best.aggregate_value == 6
        assert best.pscores == pytest.approx((30.0, 50.0))
        assert best.qscore == pytest.approx(80.0)
        assert best.intervals[0].hi == pytest.approx(22.0)
        assert best.intervals[1].hi == pytest.approx(15.0)
