"""Contract tests for the exception hierarchy.

Callers are promised a single base class (`ReproError`) and stable
subsystem groupings; these tests keep that promise honest as the
package grows.
"""

import inspect

import pytest

from repro import exceptions


def _all_exception_classes():
    return [
        obj
        for _, obj in inspect.getmembers(exceptions, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == "repro.exceptions"
    ]


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for cls in _all_exception_classes():
            assert issubclass(cls, exceptions.ReproError), cls

    def test_engine_grouping(self):
        for cls in (
            exceptions.SchemaError,
            exceptions.UnknownTableError,
            exceptions.UnknownColumnError,
            exceptions.ExpressionError,
        ):
            assert issubclass(cls, exceptions.EngineError)

    def test_query_model_grouping(self):
        assert issubclass(
            exceptions.NotRefinableError, exceptions.QueryModelError
        )
        assert issubclass(
            exceptions.OSPViolationError, exceptions.QueryModelError
        )

    def test_every_class_documented(self):
        for cls in _all_exception_classes():
            assert cls.__doc__ and cls.__doc__.strip(), cls


class TestMessages:
    def test_unknown_table_message(self):
        error = exceptions.UnknownTableError("users")
        assert "users" in str(error)
        assert error.name == "users"

    def test_unknown_column_with_table(self):
        error = exceptions.UnknownColumnError("age", table="users")
        assert "age" in str(error) and "users" in str(error)

    def test_parse_error_position(self):
        error = exceptions.ParseError("bad token", position=17)
        assert "17" in str(error)
        assert error.position == 17
        bare = exceptions.ParseError("bad token")
        assert bare.position is None

    def test_catch_all_surface(self):
        """One except-clause catches any library failure."""
        with pytest.raises(exceptions.ReproError):
            raise exceptions.OntologyError("broken tree")
        with pytest.raises(exceptions.ReproError):
            raise exceptions.DataGenError("bad config")
