"""Shared fixtures: small deterministic databases and query builders."""

from __future__ import annotations

import os
import random

import pytest

from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.interval import Interval
from repro.core.predicate import Direction, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.datagen.synthetic import numeric_table, users_table
from repro.datagen.tpch import TPCHConfig, generate_tpch
from repro.engine.catalog import Database
from repro.engine.expression import col


def pytest_collection_modifyitems(config, items):
    """Order-hygiene check: ``REPRO_TEST_SHUFFLE=<seed>`` shuffles the
    collected test order deterministically. The suite must pass in any
    order — hidden inter-test coupling (shared mutable fixtures, module
    state) is a bug. CI runs one shuffled pass; reproduce a failure
    locally with the seed it prints."""
    seed = os.environ.get("REPRO_TEST_SHUFFLE")
    if not seed:
        return
    random.Random(seed).shuffle(items)
    print(f"[conftest] shuffled {len(items)} tests "
          f"(REPRO_TEST_SHUFFLE={seed})")


@pytest.fixture(scope="session")
def small_db() -> Database:
    """One table 'data' with uniform x, y, z in [0, 100], 400 rows."""
    database = Database("small")
    database.add_table(numeric_table("data", n=400, seed=11))
    return database


@pytest.fixture(scope="session")
def users_db() -> Database:
    return users_table(n=3000, seed=3)


@pytest.fixture(scope="session")
def tiny_tpch() -> Database:
    return generate_tpch(TPCHConfig(scale_rows=600, seed=5))


@pytest.fixture(scope="session")
def skewed_tpch() -> Database:
    return generate_tpch(TPCHConfig(scale_rows=600, seed=5, zipf_z=1.0))


def count_query(
    table: str,
    bounds: dict[str, float],
    target: float,
    op: ConstraintOp = ConstraintOp.EQ,
    lo: float = 0.0,
    domain_hi: float = 100.0,
    name: str = "q",
) -> Query:
    """COUNT ACQ with one UPPER predicate per (column, bound)."""
    predicates = [
        SelectPredicate(
            name=f"{column}_le",
            expr=col(f"{table}.{column}"),
            interval=Interval(lo, bound),
            direction=Direction.UPPER,
            denominator=domain_hi - lo,
        )
        for column, bound in bounds.items()
    ]
    constraint = AggregateConstraint(
        AggregateSpec(get_aggregate("COUNT")), op, target
    )
    return Query.build(name, (table,), predicates, constraint)


@pytest.fixture()
def xy_count_query() -> Query:
    """data.x <= 40 AND data.y <= 40, COUNT = 120."""
    return count_query("data", {"x": 40.0, "y": 40.0}, target=120)
