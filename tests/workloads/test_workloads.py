"""Tests for workload generation and the paper's query templates."""

import pytest

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.predicate import Direction, JoinPredicate
from repro.core.query import ConstraintOp
from repro.engine.memory_backend import MemoryBackend
from repro.exceptions import DataGenError
from repro.workloads.generator import (
    FlexSpec,
    build_ratio_workload,
    original_aggregate,
)
from repro.workloads.templates import (
    Q2_JOINS,
    Q2_TABLES,
    cuisine_ontology,
    location_ontology,
    q1_prime_text,
    q2_flex_specs,
    q2_prime_query,
    q3_join_query,
    tpch_predicate_pool,
)


class TestRatioWorkload:
    @pytest.mark.parametrize("ratio", [0.2, 0.5, 0.9])
    def test_ratio_holds_by_construction(self, tiny_tpch, ratio):
        workload = build_ratio_workload(
            tiny_tpch,
            Q2_TABLES,
            q2_flex_specs(2, 0.4),
            ratio,
            joins=Q2_JOINS,
        )
        assert workload.original_value / workload.target == pytest.approx(
            ratio
        )
        # The recorded original matches a fresh evaluation.
        assert original_aggregate(
            tiny_tpch, workload.query
        ) == pytest.approx(workload.original_value)

    def test_selectivity_controls_original(self, tiny_tpch):
        narrow = build_ratio_workload(
            tiny_tpch, Q2_TABLES, q2_flex_specs(2, 0.2), 0.5, joins=Q2_JOINS
        )
        wide = build_ratio_workload(
            tiny_tpch, Q2_TABLES, q2_flex_specs(2, 0.7), 0.5, joins=Q2_JOINS
        )
        assert wide.original_value > narrow.original_value

    def test_lower_direction_spec(self, tiny_tpch):
        workload = build_ratio_workload(
            tiny_tpch,
            ("part",),
            [FlexSpec("part.p_retailprice", 0.4, Direction.LOWER)],
            0.5,
        )
        predicate = workload.query.refinable_predicates[0]
        assert predicate.direction is Direction.LOWER

    def test_sum_aggregate_workload(self, tiny_tpch):
        workload = build_ratio_workload(
            tiny_tpch,
            Q2_TABLES,
            q2_flex_specs(2, 0.4),
            0.5,
            aggregate="SUM",
            aggregate_attr="partsupp.ps_availqty",
            joins=Q2_JOINS,
            op=ConstraintOp.GE,
        )
        assert workload.query.constraint.spec.aggregate.name == "SUM"
        assert workload.target == pytest.approx(
            workload.original_value / 0.5
        )

    def test_validation(self, tiny_tpch):
        with pytest.raises(DataGenError):
            build_ratio_workload(tiny_tpch, ("part",), [], 0.5)
        with pytest.raises(DataGenError):
            build_ratio_workload(
                tiny_tpch,
                ("part",),
                [FlexSpec("part.p_retailprice", 0.5)],
                -1.0,
            )
        with pytest.raises(DataGenError):
            build_ratio_workload(
                tiny_tpch,
                ("part",),
                [FlexSpec("part.p_retailprice", 2.0)],
                0.5,
            )

    def test_workload_is_solvable(self, tiny_tpch):
        workload = build_ratio_workload(
            tiny_tpch,
            Q2_TABLES,
            q2_flex_specs(3, 0.3),
            0.5,
            joins=Q2_JOINS,
        )
        result = Acquire(MemoryBackend(tiny_tpch)).run(
            workload.query, AcquireConfig(gamma=10, delta=0.1)
        )
        assert result.satisfied


class TestTemplates:
    def test_q1_prime_parses(self, users_db):
        from repro.sqlext import parse_acq

        ontologies = {"users.city": location_ontology()}
        query = parse_acq(q1_prime_text(500), users_db, ontologies)
        assert query.constraint.target == 500
        assert query.dimensionality >= 4
        assert any(not p.refinable for p in query.predicates)

    def test_q2_prime_structure(self, tiny_tpch):
        query = q2_prime_query(tiny_tpch, target=50_000)
        assert query.tables == Q2_TABLES
        joins = [p for p in query.predicates if isinstance(p, JoinPredicate)]
        assert len(joins) == 2
        assert all(not j.refinable for j in joins)
        assert query.dimensionality == 2
        assert query.constraint.op is ConstraintOp.GE

    def test_q2_prime_runs(self, tiny_tpch):
        query = q2_prime_query(tiny_tpch, target=100_000)
        result = Acquire(MemoryBackend(tiny_tpch)).run(
            query, AcquireConfig(gamma=10, delta=0.05)
        )
        assert result.best is not None

    def test_q3_join_query_runs(self):
        from repro.datagen.synthetic import numeric_table
        from repro.engine.catalog import Database

        database = Database()
        database.add_table(
            numeric_table("a", n=300, columns=("x",), seed=1)
        )
        database.add_table(
            numeric_table("b", n=300, columns=("x", "y"), seed=2)
        )
        query = q3_join_query(database, target=2000)
        assert query.refinable_predicates[0].is_equi
        result = Acquire(MemoryBackend(database)).run(
            query, AcquireConfig(gamma=10, delta=0.1)
        )
        assert result.best is not None
        # The join band was refined (non-zero PScore on the join dim).
        assert result.best.pscores[0] > 0

    def test_predicate_pool_and_specs(self):
        pool = tpch_predicate_pool(0.3)
        assert len(pool) == 5
        assert all(spec.selectivity == 0.3 for spec in pool)
        assert len(q2_flex_specs(3)) == 3
        with pytest.raises(DataGenError):
            q2_flex_specs(6)

    def test_ontologies_match_figure7(self):
        food = cuisine_ontology()
        assert food.distance({"Gyro"}, "Souvlaki") == 2
        location = location_ontology()
        assert location.distance({"Boston"}, "NewYork") == 1
        assert location.distance({"Boston"}, "Seattle") == 2


class TestLineitemFamily:
    def test_lineitem_specs(self):
        from repro.workloads.templates import lineitem_flex_specs

        specs = lineitem_flex_specs(3, 0.3)
        assert [s.column for s in specs] == [
            "lineitem.l_quantity",
            "lineitem.l_extendedprice",
            "lineitem.l_discount",
        ]
        with_orders = lineitem_flex_specs(3, 0.3, with_orders=True)
        assert with_orders[2].column == "orders.o_totalprice"
        with pytest.raises(DataGenError):
            lineitem_flex_specs(9)

    def test_fk_join_workload_solvable(self, tiny_tpch):
        from repro.workloads.templates import (
            LINEITEM_JOINS,
            lineitem_flex_specs,
        )

        workload = build_ratio_workload(
            tiny_tpch,
            ("lineitem", "orders"),
            lineitem_flex_specs(2, 0.4, with_orders=False),
            0.5,
            joins=LINEITEM_JOINS,
        )
        result = Acquire(MemoryBackend(tiny_tpch)).run(
            workload.query, AcquireConfig(gamma=10, delta=0.1)
        )
        assert result.satisfied
