"""Cross-query pass fusion: bit-identity, attribution, single-flight.

The fusion layer's contract is that merging backend passes across
in-flight requests is *invisible* in the results: a fusion-enabled
concurrent replay must answer exactly what a serial unfused replay
answers in every explore mode, and per-request counters must still
partition each backend's totals exactly — with the new
``fused_passes``/``fused_cells`` counters credited to every
beneficiary of a shared pass on its own request scope.

Suites:

* ``TestFusedReplayMatchesSerial`` — the corpus-manifest mix through a
  4-worker fusion-enabled service vs a 1-worker unfused service, per
  explore mode (plus the process tile-executor arm), demanding
  bit-identical answer sets and exact attribution closure.
* ``TestFusionMergesPasses`` — a duplicate-heavy batched-incremental
  burst where fusion *must* fire: ``fused_passes > 0``, answers still
  bit-identical to each request's own serial run.
* ``TestSingleFlight`` — the cache-miss thundering herd: N threads
  missing one key through ``lookup_or_lead`` pay exactly one backend
  pass (``inflight_waits`` counts the parked readers), and N threads
  over a cold memory tier pay at most one persistent-tier read.
* ``TestCompatibilityKeys`` — Hypothesis property pinning that the
  coalescer can never group fetches with differing space geometry,
  layer, or fetch family, while target-only differences always share.
"""

import threading
import time
from collections import Counter
from dataclasses import fields as dataclass_fields
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid_cache import GridTensorCache, PersistentGridCache
from repro.core.grid_explore import GridExplorer
from repro.core.refined_space import RefinedSpace
from repro.corpus.generator import realize
from repro.corpus.manifest import DEFAULT_MANIFEST_PATH, load_manifest
from repro.engine.backends import ExecutionStats
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.service import AcquireService, PassCoalescer, ServiceConfig
from tests.conftest import count_query

MODES = ("incremental", "materialized", "tiled", "auto")

INT_FIELDS = tuple(
    field.name
    for field in dataclass_fields(ExecutionStats)
    if isinstance(getattr(ExecutionStats(), field.name), int)
)


@pytest.fixture(scope="module")
def corpus_subset():
    """One realized triple per corpus family (deterministic pick)."""
    manifest = load_manifest(DEFAULT_MANIFEST_PATH)
    by_family: dict[str, list] = {}
    for triple in manifest.triples:
        by_family.setdefault(triple.spec.family, []).append(triple)
    realized = []
    for family, triples in sorted(by_family.items()):
        spec = triples[0].spec
        database, query, config = realize(spec)
        realized.append((spec.triple_id, database, query, config))
    return realized


def _answer_key(result):
    return [
        (a.pscores, a.qscore, a.aggregate_value, a.error)
        for a in result.answers
    ]


def _replay(realized, mode, workers, fusion, repeats=2, updates=None):
    """Replay the realized mix; return (requests, results, layers).

    ``fusion`` toggles the coalescer (with a generous window so open
    batching windows actually collect concurrent co-travellers);
    ``updates`` is an extra dict of per-request config replacements.
    """
    requests = []
    layers = {}
    service = AcquireService(
        ServiceConfig(
            workers=workers,
            max_queue=64,
            fusion=fusion,
            fusion_window_ms=10.0,
        )
    )
    try:
        for name, database, query, config in realized:
            layer = MemoryBackend(database)
            layers[name] = layer
            service.register_backend(name, layer)
            config = replace(config, explore_mode=mode, **(updates or {}))
            requests.append((name, query, config))
        requests = requests * repeats
        if workers == 1:
            results = [
                service.run(query, config, backend=name)
                for name, query, config in requests
            ]
        else:
            futures = [
                service.submit(query, config, backend=name)
                for name, query, config in requests
            ]
            results = [future.result(timeout=300) for future in futures]
    finally:
        service.close()
    return requests, results, layers


def _assert_attribution_closes(requests, results, layers):
    """Summed per-request counters == each backend's own totals."""
    totals: dict[str, Counter] = {}
    for (name, _query, _config), result in zip(requests, results):
        accumulator = totals.setdefault(name, Counter())
        for field in INT_FIELDS:
            accumulator[field] += getattr(result.stats.execution, field)
    for name, layer in layers.items():
        layer_stats = layer.stats
        for field in INT_FIELDS:
            assert totals[name][field] == getattr(layer_stats, field), (
                f"{name}: per-request {field} sums to "
                f"{totals[name][field]} but the backend recorded "
                f"{getattr(layer_stats, field)}"
            )


class TestFusedReplayMatchesSerial:
    @pytest.mark.parametrize("mode", MODES)
    def test_bit_identical_and_fully_attributed(self, corpus_subset, mode):
        _, serial_results, _ = _replay(
            corpus_subset, mode, workers=1, fusion=False
        )
        requests, results, layers = _replay(
            corpus_subset, mode, workers=4, fusion=True
        )
        for index, (serial, fused) in enumerate(
            zip(serial_results, results)
        ):
            assert _answer_key(fused) == _answer_key(serial), (
                f"request {index}: fused concurrent answers diverged"
            )
            assert fused.satisfied == serial.satisfied
        _assert_attribution_closes(requests, results, layers)

    @pytest.mark.procpool
    def test_process_executor_arm(self, corpus_subset):
        updates = {"tile_workers": 2, "tile_executor": "process"}
        _, serial_results, _ = _replay(
            corpus_subset, "tiled", workers=1, fusion=False,
            updates=updates,
        )
        requests, results, layers = _replay(
            corpus_subset, "tiled", workers=4, fusion=True,
            updates=updates,
        )
        for index, (serial, fused) in enumerate(
            zip(serial_results, results)
        ):
            assert _answer_key(fused) == _answer_key(serial), (
                f"request {index}: fused process-arm answers diverged"
            )
        _assert_attribution_closes(requests, results, layers)


class TestFusionMergesPasses:
    """A burst where fusion must actually fire, not just stay safe."""

    def _database(self):
        rng = np.random.default_rng(11)
        database = Database()
        database.create_table(
            "data",
            {
                "x": rng.uniform(0, 100, 600),
                "y": rng.uniform(0, 100, 600),
            },
        )
        return database

    def test_duplicate_burst_fuses_and_stays_bit_identical(self):
        database = self._database()
        # Same refinable shape, different targets: identical
        # compatibility keys (the target is excluded), so concurrent
        # batched-incremental layers merge into shared cell passes.
        targets = (150, 160, 170, 180)
        queries = [
            count_query("data", {"x": 35.0, "y": 35.0}, target=target)
            for target in targets
        ]
        config = None
        serial = []
        for query in queries:
            from repro.core.acquire import Acquire, AcquireConfig

            config = AcquireConfig(
                explore_mode="incremental", batched=True
            )
            serial.append(
                Acquire(MemoryBackend(database)).run(query, config)
            )
        service = AcquireService(
            ServiceConfig(
                workers=len(queries),
                max_queue=16,
                fusion=True,
                fusion_window_ms=50.0,
            )
        )
        layer = MemoryBackend(database)
        try:
            service.register_backend("default", layer)
            futures = [
                service.submit(query, config) for query in queries
            ]
            results = [future.result(timeout=300) for future in futures]
            stats = service.stats()
        finally:
            service.close()
        for index, (expected, fused) in enumerate(zip(serial, results)):
            assert _answer_key(fused) == _answer_key(expected), (
                f"request {index}: fused answers diverged from serial"
            )
        assert layer.stats.fused_passes > 0, (
            "a 4-way duplicate burst with a 50ms window never shared "
            "a single merged pass"
        )
        assert stats.fused_groups > 0
        assert stats.fused_fetches > stats.fused_groups
        requests = [("default", query, config) for query in queries]
        _assert_attribution_closes(requests, results, {"default": layer})


class _SlowGridBackend(MemoryBackend):
    """MemoryBackend whose grid pass blocks long enough for a herd."""

    def __init__(self, database, delay_s=0.1):
        super().__init__(database)
        self.delay_s = delay_s
        self.grid_passes = 0
        self._pass_lock = threading.Lock()

    def execute_grid(self, prepared, space):
        with self._pass_lock:
            self.grid_passes += 1
        time.sleep(self.delay_s)
        return super().execute_grid(prepared, space)


class TestSingleFlight:
    THREADS = 8

    def _setup(self):
        rng = np.random.default_rng(5)
        database = Database()
        database.create_table(
            "data",
            {
                "x": rng.uniform(0, 100, 300),
                "y": rng.uniform(0, 100, 300),
            },
        )
        query = count_query("data", {"x": 40.0, "y": 40.0}, target=90)
        return database, query

    def _race(self, layer, query, cache):
        """Race THREADS GridExplorers over one shared cache."""
        space = RefinedSpace(query, 20.0, [60.0, 60.0])
        prepared = layer.prepare(query, [100.0, 100.0])
        aggregate = query.constraint.spec.aggregate
        barrier = threading.Barrier(self.THREADS)
        states: list = [None] * self.THREADS
        errors: list = []

        def worker(index: int) -> None:
            explorer = GridExplorer(
                layer, prepared, space, aggregate, cache=cache
            )
            barrier.wait()
            try:
                states[index] = explorer.block_state(space.max_coords)
            except Exception as error:  # noqa: BLE001 - for the assert
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, f"racing explorers crashed: {errors[:1]!r}"
        assert all(state == states[0] for state in states)
        return states

    def test_thundering_herd_pays_one_backend_pass(self):
        database, query = self._setup()
        layer = _SlowGridBackend(database)
        cache = GridTensorCache(max_bytes=1 << 24)
        self._race(layer, query, cache)
        assert layer.grid_passes == 1, (
            f"{self.THREADS} threads missing one key executed "
            f"{layer.grid_passes} grid passes — single-flight broke"
        )
        assert cache.inflight_waits >= 1, (
            "no reader ever parked on the leader's flight"
        )

    def test_cold_memory_tier_pays_one_persistent_read(self, tmp_path):
        database, query = self._setup()
        layer = _SlowGridBackend(database)
        persistent = PersistentGridCache(str(tmp_path))
        warm = GridTensorCache(max_bytes=1 << 24, persistent=persistent)
        self._race(layer, query, warm)
        passes_after_warm = layer.grid_passes
        # Fresh memory tier over the same file store: the herd must be
        # absorbed by one leader's promotion, not N file reads (and no
        # backend pass at all).
        cold = GridTensorCache(max_bytes=1 << 24, persistent=persistent)
        self._race(layer, query, cold)
        assert layer.grid_passes == passes_after_warm, (
            "a persistent-tier hit still re-executed the backend pass"
        )
        assert cold.persistent_hits == 1, (
            f"{self.THREADS} threads over a cold memory tier paid "
            f"{cold.persistent_hits} persistent reads — the leader "
            "alone should probe the file store"
        )


class _KeyProbe:
    """Fixed inputs for the compatibility-key property."""

    def __init__(self):
        rng = np.random.default_rng(3)
        self.database = Database()
        self.database.create_table(
            "data",
            {
                "x": rng.uniform(0, 100, 200),
                "y": rng.uniform(0, 100, 200),
            },
        )
        other = Database()
        other.create_table(
            "data",
            {
                "x": rng.uniform(0, 100, 220),
                "y": rng.uniform(0, 100, 220),
            },
        )
        self.layer = MemoryBackend(self.database)
        self.other_layer = MemoryBackend(other)

    def key(self, family, layer, target, step, dim_cap):
        query = count_query(
            "data", {"x": 40.0, "y": 40.0}, target=target
        )
        space = RefinedSpace(query, step, [dim_cap, dim_cap])
        prepared = layer.prepare(query, [100.0, 100.0])
        return PassCoalescer.compatibility_key(
            family, layer, prepared, space
        )


_PROBE = _KeyProbe()


class TestCompatibilityKeys:
    @settings(max_examples=40, deadline=None)
    @given(
        target_a=st.integers(min_value=10, max_value=500),
        target_b=st.integers(min_value=10, max_value=500),
        same_layer=st.booleans(),
        step_b=st.sampled_from([20.0, 25.0]),
        dim_cap_b=st.sampled_from([60.0, 80.0]),
        family_b=st.sampled_from(["tiles", "cells"]),
    )
    def test_grouping_is_exactly_target_independence(
        self, target_a, target_b, same_layer, step_b, dim_cap_b, family_b
    ):
        key_a = _PROBE.key("tiles", _PROBE.layer, target_a, 20.0, 60.0)
        layer_b = _PROBE.layer if same_layer else _PROBE.other_layer
        key_b = _PROBE.key(
            family_b, layer_b, target_b, step_b, dim_cap_b
        )
        compatible = (
            same_layer
            and family_b == "tiles"
            and step_b == 20.0
            and dim_cap_b == 60.0
        )
        if compatible:
            # Targets may differ arbitrarily: the key is
            # target-independent by construction.
            assert key_a == key_b
        else:
            # Differing geometry, layer (and thus backend digest), or
            # fetch family must never group.
            assert key_a != key_b

    def test_distinct_layers_over_identical_data_never_group(self):
        twin = MemoryBackend(_PROBE.database)
        key_a = _PROBE.key("tiles", _PROBE.layer, 100, 20.0, 60.0)
        key_b = _PROBE.key("tiles", twin, 100, 20.0, 60.0)
        assert key_a != key_b, (
            "two layer instances may not share passes: a merged pass "
            "executes against exactly one layer object"
        )
