"""Unit tests for :mod:`repro.service`: admission, budgets, lifecycle.

The backpressure tests pin the worker pool down with a monkeypatched
request body (an :class:`threading.Event` the test controls), so slot
exhaustion is deterministic rather than a race against real searches.
Everything that *executes* an ACQ uses a tiny in-memory workload.
"""

import threading

import numpy as np
import pytest

import repro.service.service as service_module
from repro.core.acquire import AcquireConfig
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.exceptions import CorpusError, QueryModelError, ServiceError
from repro.service import (
    AcquireService,
    ServiceConfig,
    percentile,
    run_closed_loop,
    run_open_loop,
)
from repro.service.loadgen import RequestRecord, _jitter_target
from tests.conftest import count_query


def _db(seed: int = 11, n: int = 400) -> Database:
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table(
        "data",
        {"x": rng.uniform(0, 100, n), "y": rng.uniform(0, 100, n)},
    )
    return database


def _query(database=None, target: int = 120):
    return count_query("data", {"x": 30.0, "y": 30.0}, target=target)


@pytest.fixture
def service():
    instance = AcquireService(ServiceConfig(workers=2, max_queue=4))
    instance.register_backend("default", MemoryBackend(_db()))
    yield instance
    instance.close()


class TestServiceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"max_queue": -1},
            {"admission": "shed"},
            {"cache_bytes": -1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(QueryModelError):
            ServiceConfig(**kwargs)

    def test_cache_sharing_disabled_at_zero_bytes(self):
        with AcquireService(ServiceConfig(cache_bytes=0)) as instance:
            assert instance.grid_cache is None

    def test_shared_state_injected_into_config(self):
        with AcquireService(
            ServiceConfig(max_grid_queries_per_request=5)
        ) as instance:
            effective = instance._effective_config(
                AcquireConfig(max_grid_queries=10_000)
            )
            assert effective.grid_cache is instance.grid_cache
            assert effective.calibration is instance.calibration
            assert effective.max_grid_queries == 5


class TestAdmission:
    def test_unknown_backend(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.run(_query(), backend="nope")
        assert excinfo.value.reason == "unknown-backend"

    def test_closed_service_refuses(self, service):
        service.close()
        with pytest.raises(ServiceError) as excinfo:
            service.run(_query())
        assert excinfo.value.reason == "closed"
        with pytest.raises(ServiceError) as excinfo:
            service.register_backend("late", MemoryBackend(_db()))
        assert excinfo.value.reason == "closed"

    def test_row_budget_rejects_oversized_request(self):
        with AcquireService(
            ServiceConfig(max_rows_per_request=100)
        ) as instance:
            instance.register_backend("default", MemoryBackend(_db(n=400)))
            with pytest.raises(ServiceError) as excinfo:
                instance.run(_query())
            assert excinfo.value.reason == "budget"
            stats = instance.stats()
            assert stats.rejected_budget == 1
            assert stats.admitted == 0

    def test_row_budget_admits_within_bound(self):
        with AcquireService(
            ServiceConfig(max_rows_per_request=1_000)
        ) as instance:
            instance.register_backend("default", MemoryBackend(_db(n=400)))
            result = instance.run(_query())
            assert result.satisfied


class _Gate:
    """Monkeypatched request body: blocks until the test releases it."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Semaphore(0)

    def __call__(self, service, driver, query, config):
        self.entered.release()
        assert self.release.wait(timeout=30.0)
        return service._run_admitted_stub()


def _stub_run_admitted(instance):
    """Count a gated request as completed and free its slot."""
    from types import SimpleNamespace

    with instance._lock:
        instance._stats.completed += 1
    instance._slots.release()
    execution = SimpleNamespace(
        queries_executed=0, rows_scanned=0, cache_hits=0, cache_misses=0,
        fused_passes=0, fused_cells=0,
    )
    return SimpleNamespace(
        satisfied=True, stats=SimpleNamespace(execution=execution)
    )


class TestBackpressure:
    @pytest.fixture
    def gate(self, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(service_module, "_execute_request", gate)
        monkeypatch.setattr(
            AcquireService,
            "_run_admitted_stub",
            _stub_run_admitted,
            raising=False,
        )
        return gate

    def test_reject_policy_queue_full(self, gate):
        instance = AcquireService(ServiceConfig(workers=1, max_queue=1))
        instance.register_backend("default", MemoryBackend(_db()))
        try:
            futures = [instance.submit(_query()) for _ in range(2)]
            with pytest.raises(ServiceError) as excinfo:
                instance.submit(_query())
            assert excinfo.value.reason == "queue-full"
            gate.release.set()
            for future in futures:
                future.result(timeout=30.0)
            stats = instance.stats()
            assert stats.submitted == 3
            assert stats.admitted == 2
            assert stats.completed == 2
            assert stats.rejected_queue == 1
        finally:
            gate.release.set()
            instance.close()

    def test_wait_policy_times_out(self, gate):
        instance = AcquireService(
            ServiceConfig(
                workers=1, max_queue=0,
                admission="wait", wait_timeout_s=0.05,
            )
        )
        instance.register_backend("default", MemoryBackend(_db()))
        try:
            future = instance.submit(_query())
            with pytest.raises(ServiceError) as excinfo:
                instance.submit(_query())
            assert excinfo.value.reason == "timeout"
            assert instance.stats().timeouts == 1
            gate.release.set()
            future.result(timeout=30.0)
        finally:
            gate.release.set()
            instance.close()

    def test_wait_policy_blocks_until_slot_frees(self, gate):
        instance = AcquireService(
            ServiceConfig(workers=1, max_queue=0, admission="wait")
        )
        instance.register_backend("default", MemoryBackend(_db()))
        try:
            first = instance.submit(_query())
            assert gate.entered.acquire(timeout=30.0)
            releaser = threading.Timer(0.05, gate.release.set)
            releaser.start()
            second = instance.submit(_query())  # blocks until slot frees
            first.result(timeout=30.0)
            second.result(timeout=30.0)
            releaser.join()
            assert instance.stats().completed == 2
        finally:
            gate.release.set()
            instance.close()


class TestExecutionAccounting:
    def test_run_returns_result_and_counts(self, service):
        result = service.run(_query())
        assert result.satisfied
        stats = service.stats()
        assert stats.submitted == stats.admitted == stats.completed == 1
        assert stats.failed == 0
        assert stats.in_flight == 0
        assert stats.peak_in_flight == 1

    def test_request_failure_counts_and_surfaces(self, service):
        class _FailingDriver:
            def run(self, query, config):
                raise RuntimeError("engine exploded")

        with service._lock:
            layer = service._backends["default"][0]
            service._backends["default"] = (layer, _FailingDriver())
        with pytest.raises(RuntimeError):
            service.run(_query())
        stats = service.stats()
        assert stats.failed == 1
        assert stats.completed == 0
        assert stats.in_flight == 0
        # The slot was released: the next request is admitted normally.
        with service._lock:
            service._backends["default"] = (layer, service_module.Acquire(layer))
        assert service.run(_query()).satisfied

    def test_shared_cache_dedupes_across_requests(self, service):
        import random

        config = AcquireConfig(explore_mode="materialized")
        query = _query()
        first = service.run(query, config)
        jittered = _jitter_target(query, random.Random(3))
        second = service.run(jittered, config)
        assert first.satisfied and second.satisfied
        assert second.stats.execution.cache_hits > 0
        assert service.grid_cache.hits > 0


class TestLoadgenPrimitives:
    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([10.0, 20.0, 30.0, 40.0], 0.5) == 20.0
        assert percentile([10.0, 20.0, 30.0, 40.0], 0.99) == 40.0
        assert percentile([10.0], 0.0) == 10.0
        with pytest.raises(CorpusError):
            percentile([1.0], 1.5)

    def test_jitter_keeps_integer_targets_positive(self):
        import random

        query = _query(target=1)
        for seed in range(20):
            jittered = _jitter_target(query, random.Random(seed))
            assert jittered.constraint.target >= 1
            assert isinstance(jittered.constraint.target, int)

    def test_closed_loop_reports_ordered_records(self, service):
        requests = [("default", _query(), AcquireConfig())] * 4
        report = run_closed_loop(service, requests, concurrency=2)
        assert [record.index for record in report.records] == [0, 1, 2, 3]
        assert report.completed == 4
        assert report.rejected == 0
        assert report.throughput_rps > 0
        assert report.service.completed == 4
        assert len(report.latencies_ms) == 4

    def test_open_loop_records_rejections(self, monkeypatch):
        gate = _Gate()
        monkeypatch.setattr(service_module, "_execute_request", gate)
        monkeypatch.setattr(
            AcquireService,
            "_run_admitted_stub",
            _stub_run_admitted,
            raising=False,
        )
        instance = AcquireService(ServiceConfig(workers=1, max_queue=0))
        instance.register_backend("default", MemoryBackend(_db()))
        try:
            requests = [("default", _query(), AcquireConfig())] * 3
            # The gated request holds the only slot; later arrivals are
            # rejected. Release it once arrivals are done so the
            # open-loop harness can join its futures.
            releaser = threading.Timer(0.2, gate.release.set)
            releaser.start()
            report = run_open_loop(instance, requests, inter_arrival_s=0.0)
            releaser.join()
            assert report.rejected >= 1
            rejected = [r for r in report.records if r.rejected_reason]
            assert all(r.rejected_reason == "queue-full" for r in rejected)
        finally:
            gate.release.set()
            instance.close()

    def test_record_defaults(self):
        record = RequestRecord(index=0, backend="default")
        assert not record.completed
        assert record.rejected_reason == ""
