"""Concurrent ACQ execution: bit-identity and per-request attribution.

The service's whole contract is that concurrency is *invisible* in the
results: N in-flight requests against shared backends, one shared grid
cache, and one shared calibration must answer exactly what a serial
replay answers, and each request's reported counters must be its own
work — nothing bled in from neighbours, nothing leaked out.

Three suites:

* ``TestConcurrentMatchesSerial`` replays a cross-family corpus subset
  through a 4-worker service and a 1-worker service, per explore mode,
  and demands bit-identical answer sets; for the fixed modes it also
  demands identical per-request counters (``auto``'s plan choice may
  legitimately differ — the shared calibration has seen different
  traffic — but its answers may not).
* The same test closes the books: summed per-request
  :class:`~repro.engine.backends.ExecutionStats` must equal each
  backend's own totals, counter for counter — the request scopes
  partition the layer's work exactly.
* ``TestSharedCacheDedupe`` replays the mix twice so the second pass
  hits tensors the first pass cached — cross-request dedupe — while
  answers stay identical to a serial double-replay.
* ``TestRequestScopeIsolation`` drives one shared backend from two
  barrier-synchronized :class:`~repro.core.acquire.Acquire` drivers
  (no service) and checks each reports exactly the counters a
  fresh-layer serial run reports — the regression test for the
  cross-query stats bleed.
"""

import threading
from collections import Counter
from dataclasses import fields as dataclass_fields
from dataclasses import replace

import numpy as np
import pytest

from repro.core.acquire import Acquire
from repro.corpus.generator import realize
from repro.corpus.manifest import DEFAULT_MANIFEST_PATH, load_manifest
from repro.engine.backends import ExecutionStats
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.service import AcquireService, ServiceConfig
from tests.conftest import count_query

MODES = ("incremental", "materialized", "tiled", "auto")

#: Integer counters of ExecutionStats; the float fields (timings) are
#: excluded because summing them across scopes is order-sensitive.
INT_FIELDS = tuple(
    field.name
    for field in dataclass_fields(ExecutionStats)
    if isinstance(getattr(ExecutionStats(), field.name), int)
)


@pytest.fixture(scope="module")
def corpus_subset():
    """One realized triple per corpus family (deterministic pick)."""
    manifest = load_manifest(DEFAULT_MANIFEST_PATH)
    by_family: dict[str, list] = {}
    for triple in manifest.triples:
        by_family.setdefault(triple.spec.family, []).append(triple)
    realized = []
    for family, triples in sorted(by_family.items()):
        spec = triples[0].spec
        database, query, config = realize(spec)
        realized.append((spec.triple_id, database, query, config))
    return realized


def _answer_key(result):
    return [
        (a.pscores, a.qscore, a.aggregate_value, a.error)
        for a in result.answers
    ]


def _execution_key(result):
    execution = result.stats.execution
    return {name: getattr(execution, name) for name in INT_FIELDS}


def _replay(realized, mode, workers, repeats=1):
    """Run the realized mix through a fresh service; return everything.

    ``workers=1`` replays serially (each request completes before the
    next is submitted); ``workers>1`` submits the whole mix up front so
    up to ``workers`` requests are in flight against the shared caches.
    ``repeats`` replays the request list that many times back to back,
    which makes later passes cache-warm relative to earlier ones.
    """
    requests = []
    layers = {}
    service = AcquireService(
        ServiceConfig(workers=workers, max_queue=64)
    )
    try:
        for name, database, query, config in realized:
            layer = MemoryBackend(database)
            layers[name] = layer
            service.register_backend(name, layer)
            requests.append(
                (name, query, replace(config, explore_mode=mode))
            )
        requests = requests * repeats
        if workers == 1:
            results = [
                service.run(query, config, backend=name)
                for name, query, config in requests
            ]
        else:
            futures = [
                service.submit(query, config, backend=name)
                for name, query, config in requests
            ]
            results = [future.result(timeout=300) for future in futures]
    finally:
        service.close()
    return requests, results, layers


def _assert_attribution_closes(requests, results, layers):
    """Summed per-request counters == each backend's own totals."""
    totals: dict[str, Counter] = {}
    for (name, _query, _config), result in zip(requests, results):
        accumulator = totals.setdefault(name, Counter())
        for field in INT_FIELDS:
            accumulator[field] += getattr(result.stats.execution, field)
    for name, layer in layers.items():
        layer_stats = layer.stats
        for field in INT_FIELDS:
            assert totals[name][field] == getattr(layer_stats, field), (
                f"{name}: per-request {field} sums to "
                f"{totals[name][field]} but the backend recorded "
                f"{getattr(layer_stats, field)}"
            )


class TestConcurrentMatchesSerial:
    @pytest.mark.parametrize("mode", MODES)
    def test_bit_identical_and_fully_attributed(self, corpus_subset, mode):
        _, serial_results, _ = _replay(corpus_subset, mode, workers=1)
        requests, results, layers = _replay(corpus_subset, mode, workers=4)
        for index, (serial, concurrent) in enumerate(
            zip(serial_results, results)
        ):
            assert _answer_key(concurrent) == _answer_key(serial), (
                f"request {index}: concurrent answers diverged"
            )
            assert concurrent.satisfied == serial.satisfied
            if mode != "auto":
                assert _execution_key(concurrent) == _execution_key(
                    serial
                ), f"request {index}: concurrent counters diverged"
        _assert_attribution_closes(requests, results, layers)


class TestSharedCacheDedupe:
    def test_second_replay_hits_shared_cache(self, corpus_subset):
        _, serial_results, serial_layers = _replay(
            corpus_subset, "materialized", workers=1, repeats=2
        )
        serial_hits = sum(
            layer.stats.cache_hits for layer in serial_layers.values()
        )
        assert serial_hits > 0, (
            "the second serial replay should hit tensors the first "
            "replay put in the shared cache"
        )
        requests, results, layers = _replay(
            corpus_subset, "materialized", workers=4, repeats=2
        )
        for index, (serial, concurrent) in enumerate(
            zip(serial_results, results)
        ):
            assert _answer_key(concurrent) == _answer_key(serial), (
                f"request {index}: cache-warm concurrent answers diverged"
            )
        _assert_attribution_closes(requests, results, layers)


class TestRequestScopeIsolation:
    """The cross-query stats-bleed regression, without the service."""

    def _database(self):
        rng = np.random.default_rng(23)
        database = Database()
        database.create_table(
            "data",
            {
                "x": rng.uniform(0, 100, 500),
                "y": rng.uniform(0, 100, 500),
            },
        )
        return database

    def test_concurrent_drivers_report_serial_numbers(self):
        database = self._database()
        queries = [
            count_query("data", {"x": 30.0, "y": 30.0}, target=140),
            count_query("data", {"x": 60.0, "y": 60.0}, target=260),
        ]
        expected = []
        for query in queries:
            result = Acquire(MemoryBackend(database)).run(query)
            expected.append(
                (_answer_key(result), _execution_key(result))
            )

        shared = MemoryBackend(database)
        barrier = threading.Barrier(len(queries))
        outcomes: list = [None] * len(queries)

        def worker(index: int) -> None:
            barrier.wait()
            outcomes[index] = Acquire(shared).run(queries[index])

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(len(queries))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for index, result in enumerate(outcomes):
            answers, execution = expected[index]
            assert _answer_key(result) == answers
            assert _execution_key(result) == execution, (
                f"query {index} reported counters that differ from its "
                "own serial run — stats bled across requests"
            )
        shared_stats = shared.stats
        for field in INT_FIELDS:
            assert getattr(shared_stats, field) == sum(
                expected[index][1][field]
                for index in range(len(queries))
            ), f"shared backend total {field} != sum of per-request work"


class TestColdBackendPrepare:
    """Concurrent first-touch ``prepare`` on one shared backend.

    The sqlite layer loads tables with CREATE TABLE + INSERT — DDL that
    is not idempotent, so racing cold requests used to crash with
    ``table ... already exists``. Loads now serialize on the backend's
    load lock; this replays the race deterministically.
    """

    def test_racing_cold_prepares_load_once(self):
        from repro.engine.sqlite_backend import SQLiteBackend

        rng = np.random.default_rng(31)
        database = Database()
        database.create_table(
            "data",
            {
                "x": rng.uniform(0, 100, 400),
                "y": rng.uniform(0, 100, 400),
            },
        )
        query = count_query("data", {"x": 40.0, "y": 40.0}, target=120)

        serial = Acquire(SQLiteBackend(database)).run(query)

        clients = 8
        layer = SQLiteBackend(database)
        barrier = threading.Barrier(clients)
        outcomes: list = [None] * clients
        errors: list = []

        def worker(index: int) -> None:
            barrier.wait()
            try:
                outcomes[index] = Acquire(layer).run(query)
            except Exception as error:  # noqa: BLE001 - recorded for assert
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, f"racing cold prepares crashed: {errors[:1]!r}"
        for result in outcomes:
            assert _answer_key(result) == _answer_key(serial)
        # Every request did the same search work as the serial run...
        serial_execution = serial.stats.execution
        assert layer.stats.queries_executed == (
            serial_execution.queries_executed * clients
        )
        # ...but the table load itself (400 rows) was paid exactly once
        # despite eight racers arriving at a cold backend together.
        load_rows = 400
        assert layer.stats.rows_scanned == load_rows + clients * (
            serial_execution.rows_scanned - load_rows
        )
