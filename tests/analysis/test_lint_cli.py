"""``python -m repro lint`` and the run path's ``--analyze`` flag."""

import csv
import json

import numpy as np
import pytest

from repro.cli import lint_main, main


@pytest.fixture()
def products_csv(tmp_path):
    path = tmp_path / "products.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["price", "rating"])
        for price, rating in zip(
            np.linspace(1.0, 500.0, 400), np.linspace(1.0, 5.0, 400)
        ):
            writer.writerow([round(price, 4), round(rating, 4)])
    return str(path)


def lint(*args):
    return lint_main(list(args))


class TestLintExitCodes:
    def test_clean_query_exits_zero(self, products_csv, capsys):
        code = lint(
            "--csv",
            f"products={products_csv}",
            "SELECT * FROM products CONSTRAINT COUNT(*) = 100 "
            "WHERE price <= 50",
        )
        assert code == 0
        assert "analysis ok" in capsys.readouterr().out

    def test_all_norefine_exits_nonzero(self, products_csv, capsys):
        code = lint(
            "--csv",
            f"products={products_csv}",
            "SELECT * FROM products CONSTRAINT COUNT(*) = 100 "
            "WHERE (price <= 50) NOREFINE",
        )
        assert code == 1
        assert "ACQ201" in capsys.readouterr().out

    def test_unsatisfiable_count_exits_nonzero(self, products_csv, capsys):
        code = lint(
            "--csv",
            f"products={products_csv}",
            "SELECT * FROM products CONSTRAINT COUNT(*) >= 5000000 "
            "WHERE price <= 50",
        )
        assert code == 1
        assert "ACQ101" in capsys.readouterr().out

    def test_strict_fails_on_warnings(self, products_csv, capsys):
        sql = (
            "SELECT * FROM products CONSTRAINT AVG(rating) = 3 "
            "WHERE price <= 50"
        )
        assert lint("--csv", f"products={products_csv}", sql) == 0
        capsys.readouterr()
        assert (
            lint("--csv", f"products={products_csv}", "--strict", sql) == 1
        )

    def test_no_tables_exits_two(self, capsys):
        assert lint("SELECT * FROM t CONSTRAINT COUNT(*) = 1") == 2
        assert "no tables" in capsys.readouterr().err


class TestLintInputForms:
    SQL = (
        "SELECT * FROM products CONSTRAINT COUNT(*) = 100 "
        "WHERE price <= 50"
    )

    def test_sql_file(self, products_csv, tmp_path, capsys):
        sql_path = tmp_path / "query.sql"
        sql_path.write_text(self.SQL)
        code = lint("--csv", f"products={products_csv}", str(sql_path))
        assert code == 0
        assert "analysis ok" in capsys.readouterr().out

    def test_stdin(self, products_csv, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(self.SQL))
        assert lint("--csv", f"products={products_csv}", "-") == 0

    def test_json_output(self, products_csv, capsys):
        code = lint(
            "--csv", f"products={products_csv}", "--json", self.SQL
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["diagnostics"][0]["code"] == "ACQ403"

    def test_main_dispatches_lint(self, products_csv, capsys):
        code = main(
            ["lint", "--csv", f"products={products_csv}", self.SQL]
        )
        assert code == 0
        assert "analysis ok" in capsys.readouterr().out


class TestRunPathAnalyzeFlag:
    def test_analyze_aborts_on_errors(self, products_csv, capsys):
        code = main(
            [
                "--csv",
                f"products={products_csv}",
                "--analyze",
                "SELECT * FROM products CONSTRAINT COUNT(*) >= 5000000 "
                "WHERE price <= 50",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "ACQ101" in captured.out
        assert "not executing" in captured.err

    def test_analyze_then_runs_clean_query(self, products_csv, capsys):
        code = main(
            [
                "--csv",
                f"products={products_csv}",
                "--analyze",
                "SELECT * FROM products CONSTRAINT COUNT(*) = 100 "
                "WHERE price <= 130",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "analysis ok" in output
        assert "satisfied=True" in output
