"""Per-pass unit tests over small catalogs with known statistics."""

import numpy as np
import pytest

from repro.analysis import analyze, analyze_sql
from repro.core.acquire import AcquireConfig
from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.interval import Interval
from repro.core.predicate import Direction, JoinPredicate, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.engine.catalog import Database
from repro.engine.expression import col
from tests.conftest import count_query


def codes(report):
    return set(report.codes())


def sql(database, text, **kwargs):
    return analyze_sql(text, database, **kwargs)


class TestSatisfiabilityPass:
    def test_count_beyond_cross_product_is_acq101(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT COUNT(*) >= 1M "
            "WHERE price <= 50",
        )
        assert "ACQ101" in codes(report) and report.has_errors

    def test_count_equal_to_table_size_is_fine(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT COUNT(*) = 1000 "
            "WHERE price <= 50",
        )
        assert "ACQ101" not in codes(report) and report.ok

    def test_strict_greater_than_table_size_is_acq101(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT COUNT(*) > 1000 "
            "WHERE price <= 50",
        )
        assert "ACQ101" in codes(report)

    def test_le_covering_everything_is_trivial(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT COUNT(*) <= 1000 "
            "WHERE price <= 50",
        )
        assert "ACQ104" in codes(report) and report.ok

    def test_ge_zero_is_trivial(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT COUNT(*) >= 0 "
            "WHERE price <= 50",
        )
        assert "ACQ104" in codes(report)

    def test_sum_beyond_column_total_is_acq102(self, ledger_db):
        # amount sums to 10000 over the whole table (linspace 0..100).
        report = sql(
            ledger_db,
            "SELECT * FROM entries CONSTRAINT SUM(amount) >= 99999 "
            "WHERE amount <= 50",
        )
        assert "ACQ102" in codes(report)

    def test_sum_with_negative_values_has_no_total_bound(self, ledger_db):
        # delta has negative entries: the total no longer bounds SUM.
        report = sql(
            ledger_db,
            "SELECT * FROM entries CONSTRAINT SUM(delta) >= 1e9 "
            "WHERE delta <= 50",
        )
        assert "ACQ102" not in codes(report)

    def test_sum_bound_skipped_for_joins(self, shop_db, ledger_db):
        """Joins duplicate rows, so the single-table total is no bound."""
        database = Database("joined")
        database.create_table("a", {"x": np.linspace(0.0, 100.0, 50)})
        database.create_table("b", {"x": np.linspace(0.0, 100.0, 50)})
        join = JoinPredicate(
            name="a_b", left=col("a.x"), right=col("b.x")
        )
        constraint = AggregateConstraint(
            AggregateSpec(get_aggregate("SUM"), col("a.x")),
            ConstraintOp.GE,
            1e6,
        )
        query = Query.build("j", ("a", "b"), [join], constraint)
        report = analyze(query, database)
        assert "ACQ102" not in codes(report)

    def test_avg_outside_value_range_is_acq103(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT AVG(rating) = 9 "
            "WHERE price <= 50",
        )
        assert "ACQ103" in codes(report)

    def test_max_above_range_is_acq103(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT MAX(rating) > 5 "
            "WHERE price <= 50",
        )
        assert "ACQ103" in codes(report)

    def test_min_within_range_is_fine(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT MIN(rating) <= 2 "
            "WHERE price <= 50",
        )
        assert "ACQ103" not in codes(report)


class TestRefinabilityPass:
    def test_all_norefine_is_acq201(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT COUNT(*) = 10 "
            "WHERE (price <= 50) NOREFINE",
        )
        assert "ACQ201" in codes(report) and report.has_errors

    def test_no_predicates_is_acq201(self, shop_db):
        constraint = AggregateConstraint(
            AggregateSpec(get_aggregate("COUNT")), ConstraintOp.EQ, 10
        )
        query = Query.build("empty", ("products",), [], constraint)
        report = analyze(query, shop_db)
        assert "ACQ201" in codes(report)

    def test_axis_spanning_whole_domain_is_acq202(self, shop_db):
        # price spans [1, 500]; a predicate admitting everything already
        # cannot admit more by expanding.
        query = count_query(
            "products", {"price": 500.0}, target=500, lo=1.0, domain_hi=500.0
        )
        report = analyze(query, shop_db)
        dead = [d for d in report.diagnostics if d.code == "ACQ202"]
        assert len(dead) == 1
        assert dead[0].subject == "price_le"

    def test_live_axis_is_not_flagged(self, shop_db):
        query = count_query(
            "products", {"price": 50.0}, target=500, lo=1.0, domain_hi=500.0
        )
        assert "ACQ202" not in codes(analyze(query, shop_db))

    def test_contraction_without_shrinkable_axis_is_acq203(self, shop_db):
        point = SelectPredicate(
            name="stock_eq",
            expr=col("products.stock"),
            interval=Interval(10.0, 10.0),
            direction=Direction.POINT,
        )
        constraint = AggregateConstraint(
            AggregateSpec(get_aggregate("COUNT")), ConstraintOp.LE, 3
        )
        query = Query.build("c", ("products",), [point], constraint)
        report = analyze(query, shop_db)
        assert "ACQ203" in codes(report)

    def test_contraction_with_shrinkable_axis_is_fine(self, shop_db):
        query = count_query(
            "products",
            {"price": 50.0},
            target=3,
            op=ConstraintOp.LE,
            lo=1.0,
            domain_hi=500.0,
        )
        assert "ACQ203" not in codes(analyze(query, shop_db))


class TestAggregatePass:
    def test_avg_warns_about_empty_sets(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT AVG(rating) = 3 "
            "WHERE price <= 50",
        )
        assert "ACQ302" in codes(report) and report.ok

    def test_sum_over_signed_column_is_acq303(self, ledger_db):
        report = sql(
            ledger_db,
            "SELECT * FROM entries CONSTRAINT SUM(delta) >= 100 "
            "WHERE delta <= 50",
        )
        assert "ACQ303" in codes(report)

    def test_sum_over_nonnegative_column_is_fine(self, ledger_db):
        report = sql(
            ledger_db,
            "SELECT * FROM entries CONSTRAINT SUM(amount) >= 100 "
            "WHERE amount <= 50",
        )
        assert "ACQ303" not in codes(report)


class TestCostPass:
    def test_every_live_query_gets_a_cost_note(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT COUNT(*) = 10 "
            "WHERE price <= 50",
        )
        notes = [d for d in report.diagnostics if d.code == "ACQ403"]
        assert len(notes) == 1
        assert "grid=" in notes[0].message

    def test_tiny_gamma_blows_the_budget(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT COUNT(*) = 10 "
            "WHERE price <= 400 AND rating <= 4 AND stock <= 50",
            config=AcquireConfig(gamma=0.01, max_grid_queries=10_000),
        )
        assert "ACQ401" in codes(report)

    def test_join_axis_without_stats_is_acq402(self):
        database = Database("j")
        database.create_table("a", {"x": np.linspace(0.0, 100.0, 50)})
        database.create_table("b", {"x": np.linspace(0.0, 100.0, 50)})
        join = JoinPredicate(name="a_b", left=col("a.x"), right=col("b.x"))
        constraint = AggregateConstraint(
            AggregateSpec(get_aggregate("COUNT")), ConstraintOp.GE, 10
        )
        query = Query.build("j", ("a", "b"), [join], constraint)
        report = analyze(query, database)
        flagged = [d for d in report.diagnostics if d.code == "ACQ402"]
        assert [d.subject for d in flagged] == ["a_b"]

    def test_explicit_limit_silences_acq402(self):
        database = Database("j")
        database.create_table("a", {"x": np.linspace(0.0, 100.0, 50)})
        database.create_table("b", {"x": np.linspace(0.0, 100.0, 50)})
        join = JoinPredicate(
            name="a_b", left=col("a.x"), right=col("b.x")
        ).with_limit(40.0)
        constraint = AggregateConstraint(
            AggregateSpec(get_aggregate("COUNT")), ConstraintOp.GE, 10
        )
        query = Query.build("j", ("a", "b"), [join], constraint)
        assert "ACQ402" not in codes(analyze(query, database))


class TestPlanPass:
    """ACQ5xx: plan-cost and cache-geometry checks."""

    def test_grid_over_cap_is_acq501_warning(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT COUNT(*) = 10 "
            "WHERE price <= 400 AND rating <= 4",
            config=AcquireConfig(materialize_cell_cap=10),
        )
        assert "ACQ501" in codes(report) and report.ok
        (diag,) = [d for d in report.diagnostics if d.code == "ACQ501"]
        assert "tiles" in diag.message

    def test_forced_materialized_over_cap_is_error(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT COUNT(*) = 10 "
            "WHERE price <= 400 AND rating <= 4",
            config=AcquireConfig(
                materialize_cell_cap=10, explore_mode="materialized"
            ),
        )
        assert "ACQ501" in codes(report) and report.has_errors
        # execution would raise, so no plan estimate is possible
        assert "ACQ503" not in codes(report)

    def test_grid_within_cap_has_no_acq501(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT COUNT(*) = 10 "
            "WHERE price <= 50",
        )
        assert "ACQ501" not in codes(report)

    def test_statless_axis_with_cache_is_acq502(self):
        from repro.core.grid_cache import GridTensorCache

        database = Database("j")
        database.create_table("a", {"x": np.linspace(0.0, 100.0, 50)})
        database.create_table("b", {"x": np.linspace(0.0, 100.0, 50)})
        join = JoinPredicate(name="a_b", left=col("a.x"), right=col("b.x"))
        constraint = AggregateConstraint(
            AggregateSpec(get_aggregate("COUNT")), ConstraintOp.GE, 10
        )
        query = Query.build("j", ("a", "b"), [join], constraint)
        with_cache = analyze(
            query,
            database,
            config=AcquireConfig(grid_cache=GridTensorCache()),
        )
        assert "ACQ502" in codes(with_cache)
        (diag,) = [
            d for d in with_cache.diagnostics if d.code == "ACQ502"
        ]
        assert "'a_b'" in diag.message
        # without a cache there is nothing whose keys could fragment
        assert "ACQ502" not in codes(analyze(query, database))

    def test_every_live_query_gets_a_plan_note(self, shop_db):
        report = sql(
            shop_db,
            "SELECT * FROM products CONSTRAINT COUNT(*) = 10 "
            "WHERE price <= 50",
        )
        notes = [d for d in report.diagnostics if d.code == "ACQ503"]
        assert len(notes) == 1
        assert "explore mode" in notes[0].message


class TestLayerSizes:
    """The DP behind the ACQ403 per-layer query counts."""

    def test_matches_enumeration(self):
        import itertools

        from repro.core.refined_space import RefinedSpace

        query = count_query("data", {"x": 40.0, "y": 40.0}, target=10)
        space = RefinedSpace(query, gamma=10.0, max_scores=[30.0, 20.0])
        sizes = space.layer_sizes(8)
        for total, expected in enumerate(sizes):
            brute = sum(
                1
                for coords in itertools.product(
                    range(space.max_coords[0] + 1),
                    range(space.max_coords[1] + 1),
                )
                if sum(coords) == total
            )
            assert brute == expected

    def test_rejects_negative(self):
        from repro.core.refined_space import RefinedSpace
        from repro.exceptions import QueryModelError

        query = count_query("data", {"x": 40.0}, target=10)
        space = RefinedSpace(query, gamma=10.0, max_scores=[30.0])
        with pytest.raises(QueryModelError):
            space.layer_sizes(-1)
