"""Engine-lint passes over seeded fixture trees + the real-tree sweep.

Each fixture module plants one violation per diagnostic code at a known
line/column; the tests assert the exact span so pass regressions (or
off-by-one span bugs) surface immediately. The final class sweeps the
actual ``src/repro`` tree with the committed baseline and requires a
clean, fully-used baseline — the same gate CI runs.
"""

import textwrap

import pytest

from repro.analysis.engine_lint import (
    EngineFinding,
    Suppression,
    apply_baseline,
    engine_lint_main,
    lint_paths,
    parse_suppressions,
)
from repro.cli import main as cli_main
from repro.exceptions import LintBaselineError

PURITY_SRC = """\
import numpy as np


def scale(a, b):
    a += b
    a[0] = 1.0
    np.cumsum(a, axis=0, out=a)
    return a


def warm(cache, key):
    tile = cache.lookup(key)
    tile += 1
    fresh = cache.lookup(key)
    fresh = fresh.copy()
    fresh += 1
    return tile + fresh
"""

LOCKS_SRC = """\
import threading


class GridTensorCache:
    def __init__(self):
        self._lock = threading.Lock()
        self.current_bytes = 0
        self._entries = {}

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self.current_bytes += 1

    def evict(self, key):
        del self._entries[key]
        self.current_bytes = 0

    @property
    def size(self):
        return self.current_bytes


class PersistentTier(GridTensorCache):
    def flush(self):
        self.current_bytes = 0
"""

EXC_SRC = """\
def fail(flag):
    if flag:
        raise ValueError("bad flag")
    raise NotImplementedError


def __getattr__(name):
    raise AttributeError(name)
"""

SQLITE_SRC = """\
import sqlite3


def connect(path):
    return sqlite3.connect(path)
"""

STATS_SRC = """\
from dataclasses import dataclass


@dataclass
class ExecutionStats:
    queries: int = 0
    rows_scanned: int = 0
    label: str = ""

    def since(self, prev):
        return ExecutionStats(queries=self.queries - prev.queries)


def bump(stats: ExecutionStats):
    stats.queries += 1
    return stats.rowz
"""


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def run_lint(root, baseline=()):
    return lint_paths(paths=[root], project_root=root, baseline=baseline)


def spans(report, code):
    return [
        (f.path, f.line, f.col)
        for f in report.findings
        if f.code == code
    ]


# ----------------------------------------------------------------------
# EL1xx tensor purity
# ----------------------------------------------------------------------
class TestTensorPurity:
    @pytest.fixture()
    def report(self, tmp_path):
        write_tree(tmp_path, {"src/repro/engine/purity.py": PURITY_SRC})
        return run_lint(tmp_path)

    def test_el101_augassign_parameter_span(self, report):
        assert spans(report, "EL101") == [
            ("src/repro/engine/purity.py", 5, 5)
        ]
        (finding,) = [f for f in report.findings if f.code == "EL101"]
        assert finding.symbol == "scale"
        assert "'a'" in finding.message

    def test_el102_subscript_store_parameter_span(self, report):
        assert spans(report, "EL102") == [
            ("src/repro/engine/purity.py", 6, 5)
        ]

    def test_el103_out_kwarg_parameter_span(self, report):
        line = PURITY_SRC.splitlines()[6]
        col = line.index("out=a") + len("out=") + 1
        assert spans(report, "EL103") == [
            ("src/repro/engine/purity.py", 7, col)
        ]

    def test_el104_cache_born_mutation_span(self, report):
        assert spans(report, "EL104") == [
            ("src/repro/engine/purity.py", 13, 5)
        ]
        (finding,) = [f for f in report.findings if f.code == "EL104"]
        assert finding.symbol == "warm"

    def test_copy_rebind_kills_the_alias(self, report):
        # ``fresh = fresh.copy()`` on line 15 makes line 16 clean.
        assert all(f.line != 16 for f in report.findings)

    def test_pass_is_scoped_to_tensor_modules(self, tmp_path):
        write_tree(tmp_path, {"src/repro/elsewhere.py": PURITY_SRC})
        report = run_lint(tmp_path)
        assert report.findings == ()


# ----------------------------------------------------------------------
# EL2xx lock discipline
# ----------------------------------------------------------------------
class TestLockDiscipline:
    @pytest.fixture()
    def report(self, tmp_path):
        write_tree(tmp_path, {"src/repro/core/cachey.py": LOCKS_SRC})
        return run_lint(tmp_path)

    def test_el201_unlocked_cache_writes(self, report):
        # The acceptance scenario: a synthetic GridTensorCache-style
        # class whose guarded attributes are touched outside the lock.
        found = spans(report, "EL201")
        assert ("src/repro/core/cachey.py", 16, 13) in found  # del entries
        assert ("src/repro/core/cachey.py", 17, 9) in found  # bytes reset

    def test_el201_symbols_and_messages(self, report):
        by_line = {f.line: f for f in report.findings if f.code == "EL201"}
        assert by_line[17].symbol == "GridTensorCache.evict"
        assert "self.current_bytes" in by_line[17].message
        assert "self._lock" in by_line[17].message

    def test_el202_unlocked_read(self, report):
        assert spans(report, "EL202") == [
            ("src/repro/core/cachey.py", 21, 16)
        ]
        (finding,) = [f for f in report.findings if f.code == "EL202"]
        assert finding.symbol == "GridTensorCache.size"

    def test_inherited_guard_reaches_subclass(self, report):
        found = spans(report, "EL201")
        assert ("src/repro/core/cachey.py", 26, 9) in found
        sub = [f for f in report.findings if f.line == 26]
        assert sub[0].symbol == "PersistentTier.flush"

    def test_init_is_exempt(self, report):
        assert all(f.line not in (6, 7, 8) for f in report.findings)

    def test_locked_method_is_clean(self, report):
        assert all(f.line not in (12, 13) for f in report.findings)


# ----------------------------------------------------------------------
# EL3xx exception / import policy
# ----------------------------------------------------------------------
class TestExceptionPolicy:
    def test_el301_bare_valueerror_span(self, tmp_path):
        write_tree(tmp_path, {"src/repro/oops.py": EXC_SRC})
        report = run_lint(tmp_path)
        assert spans(report, "EL301") == [("src/repro/oops.py", 3, 9)]
        (finding,) = report.findings
        assert "ValueError" in finding.message

    def test_allowlist_notimplemented_and_getattr(self, tmp_path):
        write_tree(tmp_path, {"src/repro/oops.py": EXC_SRC})
        report = run_lint(tmp_path)
        # lines 4 (NotImplementedError) and 8 (__getattr__) stay clean
        assert [f.line for f in report.findings] == [3]

    def test_repro_exception_classes_are_allowed(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/fine.py": """\
                from repro.exceptions import BindError


                def fail(exc):
                    raise exc


                def nope():
                    raise BindError("unbound")
                """
            },
        )
        assert run_lint(tmp_path).findings == ()

    def test_el302_sqlite_outside_engine(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/core/storage.py": SQLITE_SRC,
                "src/repro/engine/io.py": SQLITE_SRC,
            },
        )
        report = run_lint(tmp_path)
        # flagged outside engine/, clean inside it
        assert spans(report, "EL302") == [
            ("src/repro/core/storage.py", 1, 1)
        ]


# ----------------------------------------------------------------------
# EL4xx stats counter drift
# ----------------------------------------------------------------------
class TestStatsDrift:
    @pytest.fixture()
    def report(self, tmp_path):
        write_tree(tmp_path, {"src/repro/statsy.py": STATS_SRC})
        return run_lint(tmp_path)

    def test_el401_undeclared_field_span(self, report):
        line = STATS_SRC.splitlines()[15]
        col = line.index("stats.rowz") + 1
        assert spans(report, "EL401") == [
            ("src/repro/statsy.py", 16, col)
        ]
        (finding,) = [f for f in report.findings if f.code == "EL401"]
        assert "'rowz'" in finding.message and finding.symbol == "bump"

    def test_el402_hand_listed_since_span(self, report):
        assert spans(report, "EL402") == [("src/repro/statsy.py", 10, 5)]
        (finding,) = [f for f in report.findings if f.code == "EL402"]
        assert "rows_scanned" in finding.message
        assert "label" not in finding.message  # non-numeric not required

    def test_declared_field_references_are_clean(self, report):
        # stats.queries on line 15 is declared; only rowz/since flagged.
        assert sorted(f.code for f in report.findings) == [
            "EL401",
            "EL402",
        ]

    def test_fields_iteration_satisfies_el402(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/statsy.py": """\
                from dataclasses import dataclass, fields


                @dataclass
                class SearchStats:
                    cells: int = 0
                    probes: int = 0

                    def since(self, prev):
                        return {
                            f.name: getattr(self, f.name)
                            - getattr(prev, f.name)
                            for f in fields(self)
                        }
                """
            },
        )
        assert run_lint(tmp_path).findings == ()


# ----------------------------------------------------------------------
# EL5xx fork / process-pool safety
# ----------------------------------------------------------------------
PROC_SRC = """\
from concurrent.futures import ProcessPoolExecutor

from repro.core import tile_worker


class Scheduler:
    def __init__(self, pool):
        self.pool = pool

    def run(self, tiles):
        futures = [self.pool.submit(self._fetch, t) for t in tiles]
        self.pool.map(lambda t: t + 1, tiles)
        return futures

    def spawn(self):
        def task():
            return 1

        return self.pool.submit(task)

    def clean(self, tiles):
        return [
            self.pool.submit(tile_worker.fetch_tile, t) for t in tiles
        ]

    def _fetch(self, t):
        return t


def make_pool(spec):
    return ProcessPoolExecutor(
        initializer=lambda: spec,
    )
"""

SHM_LEAK_SRC = """\
from multiprocessing import shared_memory


def reserve(nbytes):
    block = shared_memory.SharedMemory(create=True, size=nbytes)
    block.close()
    return block.name
"""

SHM_ATTACH_SRC = """\
from multiprocessing import shared_memory


def peek(name):
    block = shared_memory.SharedMemory(name=name)
    return block.buf[0]
"""

SHM_OK_SRC = """\
from multiprocessing import shared_memory


def roundtrip(nbytes):
    block = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        return bytes(block.buf[:1])
    finally:
        block.close()
        block.unlink()
"""


class TestProcessSafety:
    @pytest.fixture()
    def report(self, tmp_path):
        write_tree(tmp_path, {"src/repro/core/proc.py": PROC_SRC})
        return run_lint(tmp_path)

    def test_el501_bound_method_task_span(self, report):
        line = PROC_SRC.splitlines()[10]
        col = line.index("self._fetch") + 1
        assert spans(report, "EL501") == [
            ("src/repro/core/proc.py", 11, col)
        ]
        (finding,) = [f for f in report.findings if f.code == "EL501"]
        assert finding.symbol == "Scheduler.run"
        assert "self._fetch" in finding.message

    def test_el503_lambda_nested_def_and_initializer(self, report):
        found = spans(report, "EL503")
        assert ("src/repro/core/proc.py", 12, 23) in found  # pool.map lambda
        lines = [line for _, line, _ in found]
        assert 19 in lines  # nested def shipped to submit
        assert 32 in lines  # lambda initializer
        assert len(found) == 3

    def test_module_function_task_is_clean(self, report):
        # tile_worker.fetch_tile resolves through an import — picklable
        # by reference, so Scheduler.clean produces no finding.
        assert all(f.symbol != "Scheduler.clean" for f in report.findings)

    def test_el502_create_without_unlink(self, tmp_path):
        write_tree(tmp_path, {"src/repro/core/leak.py": SHM_LEAK_SRC})
        report = run_lint(tmp_path)
        assert spans(report, "EL502") == [("src/repro/core/leak.py", 5, 13)]
        (finding,) = report.findings
        assert "unlink()" in finding.message
        assert "close()" not in finding.message

    def test_el502_attach_without_close(self, tmp_path):
        write_tree(tmp_path, {"src/repro/core/attach.py": SHM_ATTACH_SRC})
        report = run_lint(tmp_path)
        assert spans(report, "EL502") == [
            ("src/repro/core/attach.py", 5, 13)
        ]
        (finding,) = report.findings
        assert "close()" in finding.message

    def test_el502_paired_lifecycle_is_clean(self, tmp_path):
        write_tree(tmp_path, {"src/repro/core/ok.py": SHM_OK_SRC})
        assert run_lint(tmp_path).findings == ()


# ----------------------------------------------------------------------
# Baseline suppressions
# ----------------------------------------------------------------------
class TestBaseline:
    def finding(self, **kwargs):
        base = dict(
            code="EL201",
            message="m",
            path="src/repro/core/cachey.py",
            line=17,
            col=9,
            symbol="GridTensorCache.evict",
        )
        base.update(kwargs)
        return EngineFinding(**base)

    def test_qualname_prefix_matches(self):
        entry = Suppression(
            code="EL201",
            path="src/repro/core/cachey.py",
            symbol="GridTensorCache",
            reason="reviewed",
        )
        assert entry.matches(self.finding())
        assert not entry.matches(self.finding(symbol="OtherClass.evict"))
        assert not entry.matches(self.finding(path="other.py"))

    def test_star_and_empty_symbol_match_whole_file(self):
        for symbol in ("", "*"):
            entry = Suppression(
                code="EL201",
                path="src/repro/core/cachey.py",
                symbol=symbol,
                reason="reviewed",
            )
            assert entry.matches(self.finding())

    def test_apply_baseline_partitions_and_reports_unused(self):
        used = Suppression(
            code="EL201",
            path="src/repro/core/cachey.py",
            symbol="",
            reason="reviewed",
        )
        stale = Suppression(
            code="EL999", path="gone.py", symbol="", reason="stale"
        )
        report = apply_baseline([self.finding()], [used, stale])
        assert report.ok
        assert report.unsuppressed == ()
        assert [entry for _, entry in report.suppressed] == [used]
        assert report.unused == (stale,)
        assert "unused suppression" in report.render()

    def test_missing_reason_is_an_error(self):
        with pytest.raises(LintBaselineError):
            parse_suppressions("EL201 src/repro/core/cachey.py\n")

    def test_comments_and_blanks_are_skipped(self):
        entries = parse_suppressions(
            "# header\n\nEL201 a.py:Klass.meth  why not\n"
        )
        assert len(entries) == 1
        assert entries[0].symbol == "Klass.meth"
        assert entries[0].reason == "why not"


# ----------------------------------------------------------------------
# CLI + gate
# ----------------------------------------------------------------------
class TestCli:
    def test_engine_flag_exits_one_on_findings(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/oops.py": EXC_SRC})
        code = engine_lint_main([str(tmp_path), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "EL301" in out and "engine lint FAILED" in out

    def test_baseline_file_suppresses_to_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/oops.py": EXC_SRC})
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(
            "EL301 src/repro/oops.py:fail reviewed fixture\n"
        )
        code = engine_lint_main(
            [
                str(tmp_path),
                "--project-root",
                str(tmp_path),
                "--baseline",
                str(baseline),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 finding(s) suppressed" in out

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/oops.py": EXC_SRC})
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("EL301 src/repro/oops.py\n")
        code = engine_lint_main(
            [str(tmp_path), "--baseline", str(baseline)]
        )
        assert code == 2
        assert "engine lint error" in capsys.readouterr().err

    def test_main_dispatches_lint_engine(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/oops.py": EXC_SRC})
        code = cli_main(
            ["lint", "--engine", str(tmp_path), "--no-baseline"]
        )
        assert code == 1
        assert "EL301" in capsys.readouterr().out


class TestRealTreeIsClean:
    """The committed gate: src/repro + baseline = zero unsuppressed."""

    def test_sweep_with_committed_baseline(self):
        report = lint_paths()
        assert report.ok, report.render()
        assert report.files_checked > 50

    def test_baseline_has_no_stale_entries(self):
        report = lint_paths()
        assert report.unused == (), [s.render() for s in report.unused]

    def test_every_suppression_carries_a_reason(self):
        report = lint_paths()
        assert report.suppressed  # the reviewed in-place kernels
        for _, entry in report.suppressed:
            assert entry.reason.strip()
