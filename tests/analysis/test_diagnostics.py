"""Diagnostic / AnalysisReport primitives, including golden renderings."""

import json

from repro.analysis import AnalysisReport, Diagnostic, Severity
from repro.analysis.diagnostics import Span, sort_diagnostics


def make(code, severity, message="m", **kwargs):
    return Diagnostic(code=code, severity=severity, message=message, **kwargs)


class TestSeverity:
    def test_rank_orders_errors_first(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank
        assert Severity.WARNING.rank < Severity.INFO.rank

    def test_str(self):
        assert str(Severity.WARNING) == "warning"


class TestSpan:
    def test_line_col_first_line(self):
        assert Span(3, 5).line_col("SELECT *") == (1, 4)

    def test_line_col_later_line(self):
        source = "SELECT *\nFROM t\nWHERE x <= 5"
        start = source.index("WHERE")
        assert Span(start, start + 5).line_col(source) == (3, 1)


class TestDiagnosticRender:
    def test_golden_with_source(self):
        source = "SELECT * FROM t CONSTRAINT COUNT(*) = 10 WHERE x <= 5"
        diagnostic = make(
            "ACQ101",
            Severity.ERROR,
            message="target unreachable",
            hint="lower the target",
            span=Span(16, 40),
        )
        assert diagnostic.render(source) == (
            "error[ACQ101]: target unreachable\n"
            "  --> line 1, column 17\n"
            "  | SELECT * FROM t CONSTRAINT COUNT(*) = 10 WHERE x <= 5\n"
            "  |                 ^^^^^^^^^^^^^^^^^^^^^^^^\n"
            "  = help: lower the target"
        )

    def test_golden_without_source_uses_subject(self):
        diagnostic = make(
            "ACQ202", Severity.WARNING, message="dead axis", subject="x_le"
        )
        assert diagnostic.render() == "warning[ACQ202]: dead axis (at 'x_le')"

    def test_span_at_eof_is_clamped(self):
        source = "SELECT"
        diagnostic = make(
            "ACQ001", Severity.ERROR, span=Span(len(source), len(source) + 1)
        )
        rendered = diagnostic.render(source)
        assert "line 1, column 7" in rendered
        assert "^" in rendered

    def test_to_dict_round_trips_through_json(self):
        diagnostic = make(
            "ACQ401",
            Severity.WARNING,
            message="big grid",
            hint="raise gamma",
            span=Span(2, 9),
            subject="grid",
        )
        payload = json.loads(json.dumps(diagnostic.to_dict()))
        assert payload == {
            "code": "ACQ401",
            "severity": "warning",
            "message": "big grid",
            "hint": "raise gamma",
            "span": {"start": 2, "end": 9},
            "subject": "grid",
        }


class TestAnalysisReport:
    def test_partitions_by_severity(self):
        report = AnalysisReport(
            diagnostics=(
                make("ACQ101", Severity.ERROR),
                make("ACQ202", Severity.WARNING),
                make("ACQ403", Severity.INFO),
            )
        )
        assert report.has_errors and not report.ok
        assert [d.code for d in report.errors] == ["ACQ101"]
        assert [d.code for d in report.warnings] == ["ACQ202"]
        assert report.codes() == ("ACQ101", "ACQ202", "ACQ403")

    def test_ok_report(self):
        report = AnalysisReport(diagnostics=(make("ACQ403", Severity.INFO),))
        assert report.ok
        report.raise_if_errors()  # must not raise

    def test_raise_if_errors(self):
        from repro.exceptions import AnalysisError

        report = AnalysisReport(
            diagnostics=(make("ACQ101", Severity.ERROR, message="boom"),)
        )
        try:
            report.raise_if_errors()
        except AnalysisError as exc:
            assert exc.report is report
            assert "ACQ101" in str(exc) and "boom" in str(exc)
        else:
            raise AssertionError("expected AnalysisError")

    def test_render_summary_line(self):
        report = AnalysisReport(
            diagnostics=(
                make("ACQ101", Severity.ERROR),
                make("ACQ403", Severity.INFO),
            )
        )
        assert report.render().endswith(
            "analysis FAILED: 1 error(s), 0 warning(s), 1 note(s)"
        )

    def test_sort_is_severity_then_code(self):
        unsorted = [
            make("ACQ403", Severity.INFO),
            make("ACQ302", Severity.WARNING),
            make("ACQ201", Severity.ERROR),
            make("ACQ101", Severity.ERROR),
        ]
        assert [d.code for d in sort_diagnostics(unsorted)] == [
            "ACQ101",
            "ACQ201",
            "ACQ302",
            "ACQ403",
        ]
