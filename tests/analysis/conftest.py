"""Fixtures for the static-analyzer tests: tiny deterministic catalogs."""

import numpy as np
import pytest

from repro.engine.catalog import Database


@pytest.fixture(scope="session")
def shop_db() -> Database:
    """One table 'products' with known bounds: price/rating/stock."""
    database = Database("shop")
    database.create_table(
        "products",
        {
            # linspace keeps the catalog stats exact and deterministic:
            # price in [1, 500], rating in [1, 5], stock in [0, 99].
            "price": np.linspace(1.0, 500.0, 1000),
            "rating": np.linspace(1.0, 5.0, 1000),
            "stock": np.arange(1000) % 100,
        },
    )
    return database


@pytest.fixture(scope="session")
def ledger_db() -> Database:
    """One table with a signed 'delta' column (for the SUM warnings)."""
    database = Database("ledger")
    database.create_table(
        "entries",
        {
            "delta": np.linspace(-50.0, 150.0, 200),
            "amount": np.linspace(0.0, 100.0, 200),
        },
    )
    return database
