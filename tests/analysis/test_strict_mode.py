"""Pre-flight wiring: Acquire(strict=True), harness preflight, and the
no-false-positive property (clean analysis => the driver accepts it)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze
from repro.core.acquire import Acquire, AcquireConfig
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.exceptions import (
    AnalysisError,
    OSPViolationError,
    QueryModelError,
)
from repro.harness.runner import preflight_query
from tests.conftest import count_query


@pytest.fixture(scope="module")
def grid_db() -> Database:
    database = Database("grid")
    database.create_table(
        "data",
        {
            "x": np.linspace(0.0, 100.0, 200),
            "y": np.linspace(0.0, 100.0, 200),
        },
    )
    return database


def unsatisfiable(target=1e9):
    return count_query("data", {"x": 40.0, "y": 40.0}, target=target)


class TestStrictDriver:
    def test_strict_rejects_unsatisfiable_query(self, grid_db):
        acquire = Acquire(MemoryBackend(grid_db))
        with pytest.raises(AnalysisError) as excinfo:
            acquire.run(unsatisfiable(), strict=True)
        assert "ACQ101" in str(excinfo.value)
        assert excinfo.value.report.has_errors

    def test_default_mode_still_runs(self, grid_db):
        result = Acquire(MemoryBackend(grid_db)).run(unsatisfiable())
        assert not result.satisfied

    def test_strict_passes_clean_query(self, grid_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, target=120)
        result = Acquire(MemoryBackend(grid_db)).run(query, strict=True)
        assert result.best is not None

    def test_strict_skips_backends_without_catalog(self, grid_db):
        """Strict mode degrades to a no-op without a catalog handle."""

        class Opaque:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, item):
                if item == "database":
                    raise AttributeError(item)
                return getattr(self._inner, item)

        layer = Opaque(MemoryBackend(grid_db))
        result = Acquire(layer).run(unsatisfiable(), strict=True)
        assert not result.satisfied  # ran (and failed) instead of raising


class TestHarnessPreflight:
    def test_raises_before_any_execution(self, grid_db):
        with pytest.raises(AnalysisError):
            preflight_query(MemoryBackend(grid_db), unsatisfiable())

    def test_clean_query_passes(self, grid_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, target=120)
        preflight_query(MemoryBackend(grid_db), query)


class TestNoFalsePositives:
    """A query the analyzer passes must be accepted by the driver: zero
    ERROR diagnostics implies Acquire raises no model/OSP exception."""

    @settings(max_examples=20, deadline=None)
    @given(
        bound_x=st.floats(min_value=5.0, max_value=100.0),
        bound_y=st.floats(min_value=5.0, max_value=100.0),
        target=st.integers(min_value=1, max_value=40_000),
        op_name=st.sampled_from(["=", ">=", "<="]),
    )
    def test_clean_queries_run(self, bound_x, bound_y, target, op_name):
        from repro.core.query import ConstraintOp

        database = Database("prop")
        database.create_table(
            "data",
            {
                "x": np.linspace(0.0, 100.0, 200),
                "y": np.linspace(0.0, 100.0, 200),
            },
        )
        query = count_query(
            "data",
            {"x": bound_x, "y": bound_y},
            target=target,
            op=ConstraintOp.parse(op_name),
        )
        report = analyze(query, database)
        if report.has_errors:
            return  # the analyzer rejected it; nothing to check
        config = AcquireConfig(gamma=25.0)
        try:
            Acquire(MemoryBackend(database)).run(query, config, strict=True)
        except (QueryModelError, OSPViolationError, AnalysisError) as exc:
            raise AssertionError(
                f"analyzer passed but driver rejected: {exc}"
            )
