"""The SQL front-end of the analyzer: failures become diagnostics."""

import numpy as np

from repro.analysis import analyze_sql
from repro.engine.catalog import Database
from repro.exceptions import BindError
from repro.sqlext import parse_acq


class TestFrontEndDiagnostics:
    def test_parse_error_is_acq001_with_span(self, shop_db):
        report = analyze_sql("SELECT FROM WHERE", shop_db)
        assert report.codes() == ("ACQ001",)
        (diagnostic,) = report.diagnostics
        assert diagnostic.span is not None

    def test_unknown_table_is_acq002(self, shop_db):
        report = analyze_sql(
            "SELECT * FROM nope CONSTRAINT COUNT(*) = 10 WHERE x <= 5",
            shop_db,
        )
        assert report.codes() == ("ACQ002",)

    def test_non_osp_aggregate_is_acq301(self, shop_db):
        report = analyze_sql(
            "SELECT * FROM products CONSTRAINT STDDEV(price) = 10 "
            "WHERE price <= 50",
            shop_db,
        )
        assert report.codes() == ("ACQ301",)
        (diagnostic,) = report.diagnostics
        assert "OSP" in (diagnostic.hint or "")

    def test_known_non_osp_aggregate_is_acq301_naming_it(self, shop_db):
        report = analyze_sql(
            "SELECT * FROM products CONSTRAINT MEDIAN(price) = 10 "
            "WHERE price <= 50",
            shop_db,
        )
        assert report.codes() == ("ACQ301",)
        assert "MEDIAN" in report.diagnostics[0].message

    def test_unknown_aggregate_is_acq002_naming_it(self, shop_db):
        """Unsupported aggregates bind-fail with the offending name."""
        report = analyze_sql(
            "SELECT * FROM products CONSTRAINT FROBNICATE(price) = 10 "
            "WHERE price <= 50",
            shop_db,
        )
        assert report.codes() == ("ACQ002",)
        assert "FROBNICATE" in report.diagnostics[0].message

    def test_bind_error_exception_also_names_the_aggregate(self, shop_db):
        """parse_acq raises one exception type with the offending name."""
        try:
            parse_acq(
                "SELECT * FROM products CONSTRAINT FROBNICATE(price) = 10 "
                "WHERE price <= 50",
                shop_db,
            )
        except BindError as exc:
            assert "FROBNICATE" in str(exc)
        else:
            raise AssertionError("expected BindError")


class TestSpans:
    def test_constraint_diagnostic_points_at_the_clause(self, shop_db):
        text = (
            "SELECT * FROM products\n"
            "CONSTRAINT COUNT(*) >= 1M\n"
            "WHERE price <= 50"
        )
        report = analyze_sql(text, shop_db)
        errors = [d for d in report.diagnostics if d.code == "ACQ101"]
        assert errors and errors[0].span is not None
        start, end = errors[0].span.start, errors[0].span.end
        assert text[start:end] == "COUNT(*) >= 1M"

    def test_predicate_diagnostic_points_at_the_predicate(self):
        database = Database("d")
        database.create_table("t", {"x": np.linspace(0.0, 100.0, 100)})
        text = (
            "SELECT * FROM t CONSTRAINT COUNT(*) = 10 "
            "WHERE x <= 100"
        )
        report = analyze_sql(text, database)
        dead = [d for d in report.diagnostics if d.code == "ACQ202"]
        assert dead and dead[0].span is not None
        start, end = dead[0].span.start, dead[0].span.end
        assert text[start:end] == "x <= 100"


class TestGoldenRendering:
    def test_all_norefine_report(self, shop_db):
        text = (
            "SELECT * FROM products\n"
            "CONSTRAINT COUNT(*) = 1000\n"
            "WHERE (price <= 50) NOREFINE"
        )
        report = analyze_sql(text, shop_db)
        assert report.render() == (
            "error[ACQ201]: every predicate is marked NOREFINE; the "
            "refined space has no dimensions and ACQUIRE cannot expand "
            "anything\n"
            "  --> line 2, column 12\n"
            "  | CONSTRAINT COUNT(*) = 1000\n"
            "  |            ^^^^^^^^^^^^^^^\n"
            "  = help: drop NOREFINE from at least one predicate\n"
            "analysis FAILED: 1 error(s), 0 warning(s), 0 note(s)"
        )

    def test_clean_report_renders_ok(self, shop_db):
        report = analyze_sql(
            "SELECT * FROM products CONSTRAINT COUNT(*) = 100 "
            "WHERE price <= 50",
            shop_db,
        )
        rendered = report.render()
        assert rendered.startswith("info[ACQ403]: search-cost estimate")
        assert "info[ACQ503]: plan estimate" in rendered
        assert rendered.endswith(
            "analysis ok: 0 error(s), 0 warning(s), 2 note(s)"
        )


class TestQuickstartQueryIsClean:
    def test_readme_query_analyzes_clean(self):
        """The documented quickstart ACQ must never trip the linter."""
        from repro.datagen.synthetic import users_table

        database = users_table(n=3000, seed=3)
        report = analyze_sql(
            "SELECT * FROM users CONSTRAINT COUNT(*) = 1000 "
            "WHERE users.age <= 30 AND users.income <= 50000",
            database,
        )
        assert report.ok, report.render()
