"""Tests for the TPC-H-shaped generator."""

import numpy as np
import pytest

from repro.datagen.tpch import (
    ALL_TABLES,
    MARKET_SEGMENTS,
    TPCHConfig,
    generate_tpch,
    tpch_sizes,
)
from repro.exceptions import DataGenError


@pytest.fixture(scope="module")
def db():
    return generate_tpch(TPCHConfig(scale_rows=800, seed=42))


class TestSchema:
    def test_all_tables_present(self, db):
        assert set(db.table_names) == set(ALL_TABLES)

    def test_sizes_scale(self, db):
        sizes = tpch_sizes(db)
        assert sizes["partsupp"] == 800
        assert sizes["part"] == 200
        assert sizes["supplier"] == 20
        assert sizes["lineitem"] == 1600

    def test_explicit_count_override(self):
        db = generate_tpch(
            TPCHConfig(scale_rows=100, counts={"part": 77},
                       tables=("part",))
        )
        assert len(db.table("part")) == 77

    def test_subset_generation(self):
        db = generate_tpch(
            TPCHConfig(scale_rows=200, tables=("supplier", "part",
                                               "partsupp"))
        )
        assert set(db.table_names) == {"supplier", "part", "partsupp"}

    def test_unknown_table_rejected(self):
        with pytest.raises(DataGenError):
            generate_tpch(TPCHConfig(tables=("nation",)))


class TestKeys:
    def test_primary_keys_dense(self, db):
        suppkeys = db.table("supplier").column("s_suppkey")
        np.testing.assert_array_equal(suppkeys, np.arange(1, 21))
        partkeys = db.table("part").column("p_partkey")
        np.testing.assert_array_equal(partkeys, np.arange(1, 201))

    def test_foreign_key_integrity(self, db):
        """Every FK value exists in the referenced table."""
        supp = set(db.table("supplier").column("s_suppkey").tolist())
        part = set(db.table("part").column("p_partkey").tolist())
        orders = set(db.table("orders").column("o_orderkey").tolist())
        cust = set(db.table("customer").column("c_custkey").tolist())
        ps = db.table("partsupp")
        assert set(ps.column("ps_suppkey").tolist()) <= supp
        assert set(ps.column("ps_partkey").tolist()) <= part
        li = db.table("lineitem")
        assert set(li.column("l_orderkey").tolist()) <= orders
        assert set(li.column("l_suppkey").tolist()) <= supp
        assert set(li.column("l_partkey").tolist()) <= part
        assert set(db.table("orders").column("o_custkey").tolist()) <= cust


class TestValueRanges:
    def test_tpch_spec_ranges(self, db):
        acctbal = db.table("supplier").column("s_acctbal")
        assert acctbal.min() >= -999.99 and acctbal.max() <= 9999.99
        size = db.table("part").column("p_size")
        assert size.min() >= 1 and size.max() <= 50
        price = db.table("part").column("p_retailprice")
        assert price.min() >= 900.0 and price.max() <= 2098.99
        qty = db.table("partsupp").column("ps_availqty")
        assert qty.min() >= 1 and qty.max() <= 9999
        discount = db.table("lineitem").column("l_discount")
        assert discount.min() >= 0.0 and discount.max() <= 0.10

    def test_part_types_are_valid_combos(self, db):
        types = set(db.table("part").column("p_type").tolist())
        assert all(len(t.split(" ")) == 3 for t in types)
        assert any("BURNISHED" in t for t in types)

    def test_market_segments(self, db):
        segments = set(db.table("customer").column("c_mktsegment").tolist())
        assert segments <= set(MARKET_SEGMENTS)

    def test_extendedprice_consistent_with_quantity(self, db):
        li = db.table("lineitem")
        ratio = li.column("l_extendedprice") / li.column("l_quantity")
        assert ratio.min() >= 899.0
        assert ratio.max() <= 2100.0


class TestDeterminismAndSkew:
    def test_same_seed_same_data(self):
        a = generate_tpch(TPCHConfig(scale_rows=300, seed=9))
        b = generate_tpch(TPCHConfig(scale_rows=300, seed=9))
        np.testing.assert_array_equal(
            a.table("partsupp").column("ps_availqty"),
            b.table("partsupp").column("ps_availqty"),
        )

    def test_different_seed_differs(self):
        a = generate_tpch(TPCHConfig(scale_rows=300, seed=9))
        b = generate_tpch(TPCHConfig(scale_rows=300, seed=10))
        assert not np.array_equal(
            a.table("partsupp").column("ps_availqty"),
            b.table("partsupp").column("ps_availqty"),
        )

    def test_zipf_skew_applied(self):
        uniform = generate_tpch(TPCHConfig(scale_rows=4000, seed=1))
        skewed = generate_tpch(TPCHConfig(scale_rows=4000, seed=1,
                                          zipf_z=1.0))
        u_sizes = uniform.table("part").column("p_size")
        s_sizes = skewed.table("part").column("p_size")
        top_u = np.bincount(u_sizes).max() / len(u_sizes)
        top_s = np.bincount(s_sizes).max() / len(s_sizes)
        assert top_s > 2 * top_u

    def test_database_name_reflects_skew(self):
        assert generate_tpch(TPCHConfig(scale_rows=200)).name == "tpch"
        assert (
            generate_tpch(TPCHConfig(scale_rows=200, zipf_z=1.0)).name
            == "tpch_z1"
        )
