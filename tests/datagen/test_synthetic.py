"""Tests for the synthetic helper tables."""

import pytest

from repro.datagen.synthetic import numeric_table, users_table
from repro.exceptions import DataGenError


class TestNumericTable:
    def test_shape_and_range(self):
        table = numeric_table(n=500, columns=("a", "b"), low=5.0, high=9.0)
        assert len(table) == 500
        assert table.schema.column_names == ["a", "b"]
        for column in ("a", "b"):
            values = table.column(column)
            assert values.min() >= 5.0
            assert values.max() <= 9.0

    def test_deterministic(self):
        a = numeric_table(seed=3)
        b = numeric_table(seed=3)
        assert (a.column("x") == b.column("x")).all()

    def test_zipf_variant(self):
        table = numeric_table(n=2000, zipf_z=1.0, seed=2)
        values = table.column("x")
        # Skewed: median far from the midpoint of the range.
        import numpy as np

        assert abs(np.median(values) - 50.0) > 5.0

    def test_needs_columns(self):
        with pytest.raises(DataGenError):
            numeric_table(columns=())


class TestUsersTable:
    def test_schema(self):
        database = users_table(n=200, seed=1)
        users = database.table("users")
        assert len(users) == 200
        assert set(users.schema.column_names) == {
            "user_id", "age", "income", "engagement", "city", "interest",
        }
        ages = users.column("age")
        assert ages.min() >= 18 and ages.max() <= 75

    def test_reuses_existing_database(self):
        from repro.engine.catalog import Database

        database = Database("mine")
        returned = users_table(n=50, database=database)
        assert returned is database
        assert database.has_table("users")
