"""Seed stability: the same seed must rebuild byte-identical data.

The committed corpus stores only recipes plus content digests, so the
whole quality gate rests on generation being reproducible — same seed,
same bytes, same ``database_digest`` — and on different seeds actually
producing different data.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid_cache import database_digest
from repro.corpus.manifest import digest_hex
from repro.datagen.synthetic import numeric_table, users_table
from repro.datagen.tpch import TPCHConfig, generate_tpch


class TestNumericTable:
    def test_same_seed_byte_identical(self):
        first = numeric_table("data", n=200, seed=42, zipf_z=1.0)
        again = numeric_table("data", n=200, seed=42, zipf_z=1.0)
        for name in first.schema.column_names:
            a = np.asarray(first.column(name))
            b = np.asarray(again.column(name))
            assert a.dtype == b.dtype
            assert a.tobytes() == b.tobytes(), name

    def test_different_seed_differs(self):
        first = numeric_table("data", n=200, seed=42)
        other = numeric_table("data", n=200, seed=43)
        assert (
            np.asarray(first.column("x")).tobytes()
            != np.asarray(other.column("x")).tobytes()
        )


class TestUsersTable:
    def test_same_seed_byte_identical(self):
        first = users_table(n=150, seed=9)
        again = users_table(n=150, seed=9)
        assert database_digest(first) == database_digest(again)
        assert digest_hex(first) == digest_hex(again)

    def test_string_columns_identical(self):
        first = users_table(n=150, seed=9).table("users")
        again = users_table(n=150, seed=9).table("users")
        assert list(first.column("city")) == list(again.column("city"))
        assert list(first.column("interest")) == list(
            again.column("interest")
        )


class TestDigest:
    def test_digest_reflects_content_not_identity(self):
        first = users_table(n=100, seed=5)
        again = users_table(n=100, seed=5)
        other_seed = users_table(n=100, seed=6)
        other_size = users_table(n=101, seed=5)
        assert digest_hex(first) == digest_hex(again)
        assert digest_hex(first) != digest_hex(other_seed)
        assert digest_hex(first) != digest_hex(other_size)

    def test_tpch_same_seed_same_digest(self):
        config = TPCHConfig(scale_rows=120, seed=3)
        assert database_digest(
            generate_tpch(config)
        ) == database_digest(generate_tpch(TPCHConfig(scale_rows=120, seed=3)))
