"""Tests for the distribution samplers."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.datagen.distributions import (
    clustered,
    uniform_floats,
    uniform_ints,
    zipf_floats,
    zipf_ints,
    zipf_probabilities,
)
from repro.exceptions import DataGenError


class TestUniform:
    def test_ints_inclusive_bounds(self):
        rng = np.random.default_rng(0)
        values = uniform_ints(rng, 10_000, 1, 5)
        assert values.min() == 1
        assert values.max() == 5
        assert set(np.unique(values)) == {1, 2, 3, 4, 5}

    def test_floats_range(self):
        rng = np.random.default_rng(0)
        values = uniform_floats(rng, 5000, -2.0, 3.0)
        assert values.min() >= -2.0
        assert values.max() < 3.0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DataGenError):
            uniform_ints(rng, -1, 0, 1)
        with pytest.raises(DataGenError):
            uniform_floats(rng, 10, 5.0, 1.0)


class TestZipf:
    def test_probabilities_normalized(self):
        probabilities = zipf_probabilities(100, 1.0)
        assert probabilities.sum() == pytest.approx(1.0)
        assert (np.diff(probabilities) <= 0).all()  # decreasing by rank

    def test_z0_is_uniform(self):
        probabilities = zipf_probabilities(10, 0.0)
        np.testing.assert_allclose(probabilities, 0.1)

    def test_z1_matches_harmonic(self):
        probabilities = zipf_probabilities(4, 1.0)
        harmonic = 1 + 1 / 2 + 1 / 3 + 1 / 4
        assert probabilities[0] == pytest.approx(1 / harmonic)

    def test_skew_concentrates_mass(self):
        """z=1 data has far higher top-value frequency than z=0."""
        rng = np.random.default_rng(1)
        uniform = zipf_ints(rng, 20_000, 1, 100, z=0.0)
        skewed = zipf_ints(rng, 20_000, 1, 100, z=1.0)
        top_uniform = np.bincount(uniform).max() / len(uniform)
        top_skewed = np.bincount(skewed).max() / len(skewed)
        assert top_skewed > 3 * top_uniform

    def test_uniform_z0_passes_chisquare(self):
        rng = np.random.default_rng(2)
        values = zipf_ints(rng, 50_000, 1, 10, z=0.0)
        counts = np.bincount(values)[1:]
        _, p_value = scipy_stats.chisquare(counts)
        assert p_value > 0.001

    def test_floats_in_range(self):
        rng = np.random.default_rng(3)
        values = zipf_floats(rng, 5000, 10.0, 20.0, z=1.0)
        assert values.min() >= 10.0
        assert values.max() <= 20.0

    def test_validation(self):
        with pytest.raises(DataGenError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(DataGenError):
            zipf_probabilities(5, -1.0)


class TestClustered:
    def test_clipped_to_range(self):
        rng = np.random.default_rng(4)
        values = clustered(rng, 1000, [10.0, 90.0], 5.0, 0.0, 100.0)
        assert values.min() >= 0.0
        assert values.max() <= 100.0

    def test_leaves_gaps(self):
        rng = np.random.default_rng(5)
        values = clustered(rng, 2000, [10.0, 90.0], 2.0, 0.0, 100.0)
        middle = np.sum((values > 40) & (values < 60))
        assert middle < 20  # the valley between clusters is near-empty

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DataGenError):
            clustered(rng, 10, [], 1.0, 0.0, 1.0)
        with pytest.raises(DataGenError):
            clustered(rng, 10, [0.5], 0.0, 0.0, 1.0)
