"""Tests for the compared techniques (paper section 8.2)."""

import numpy as np
import pytest

from repro.baselines import BinSearch, TopK, TQGen
from repro.core.query import ConstraintOp
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sqlite_backend import SQLiteBackend
from repro.exceptions import QueryModelError
from tests.conftest import count_query


@pytest.fixture(scope="module")
def db() -> Database:
    rng = np.random.default_rng(77)
    database = Database()
    database.create_table(
        "data",
        {
            "x": rng.uniform(0, 100, 5000),
            "y": rng.uniform(0, 100, 5000),
            "z": rng.uniform(0, 100, 5000),
        },
    )
    return database


@pytest.fixture()
def query():
    return count_query("data", {"x": 30.0, "y": 30.0}, target=1500)


class TestCommonContract:
    @pytest.mark.parametrize("technique", [TopK(), BinSearch(), TQGen()])
    def test_count_only_by_default(self, db, technique):
        sum_query = count_query("data", {"x": 30.0}, target=100)
        from repro.core.aggregates import AggregateSpec, get_aggregate
        from repro.core.query import AggregateConstraint
        from repro.engine.expression import col

        sum_query = sum_query.with_constraint(
            AggregateConstraint(
                AggregateSpec(get_aggregate("SUM"), col("data.x")),
                ConstraintOp.GE,
                100.0,
            )
        )
        with pytest.raises(QueryModelError, match="only supports"):
            technique.run(MemoryBackend(db), sum_query)

    @pytest.mark.parametrize("technique", [TopK(), BinSearch(), TQGen()])
    def test_run_populates_metrics(self, db, query, technique):
        run = technique.run(MemoryBackend(db), query)
        assert run.method == technique.name
        assert run.elapsed_s > 0
        assert run.execution.queries_executed >= 1
        assert len(run.pscores) == 2
        assert run.qscore >= 0

    def test_invalid_delta(self):
        with pytest.raises(QueryModelError):
            TopK(delta=-1)


class TestTopK:
    def test_exact_cardinality(self, db, query):
        run = TopK().run(MemoryBackend(db), query)
        assert run.aggregate_value == 1500
        assert run.error == 0.0
        assert run.satisfied

    def test_bounding_query_admits_k(self, db, query):
        """The implied bounding query covers at least the k selected."""
        layer = MemoryBackend(db)
        run = TopK().run(layer, query)
        prepared = layer.prepare(query, [400.0, 400.0])
        count = layer.execute_box(prepared, run.pscores)[0]
        assert count >= 1500

    def test_sqlite_agrees_with_memory(self, db, query):
        memory_run = TopK().run(MemoryBackend(db), query)
        sqlite_run = TopK().run(SQLiteBackend(db), query)
        assert sqlite_run.aggregate_value == memory_run.aggregate_value
        assert sqlite_run.qscore == pytest.approx(memory_run.qscore,
                                                  rel=1e-6)

    def test_k_larger_than_data(self, db):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=100_000)
        run = TopK().run(MemoryBackend(db), query)
        assert run.aggregate_value == 5000  # whole table admitted
        assert not run.satisfied


class TestBinSearch:
    def test_reaches_target_within_delta(self, db, query):
        run = BinSearch(probes_per_dim=14).run(MemoryBackend(db), query)
        assert run.satisfied
        assert run.aggregate_value == pytest.approx(1500, rel=0.06)

    def test_order_changes_outcome(self, db):
        """Section 8.4.1's critique: refinement depends on the order."""
        query = count_query("data", {"x": 20.0, "y": 60.0}, target=2500)
        first = BinSearch(order=(0, 1)).run(MemoryBackend(db), query)
        second = BinSearch(order=(1, 0)).run(MemoryBackend(db), query)
        assert first.pscores != second.pscores

    def test_invalid_order_rejected(self, db, query):
        with pytest.raises(QueryModelError, match="permutation"):
            BinSearch(order=(0, 0)).run(MemoryBackend(db), query)

    def test_unreachable_target_pins_all_dims(self, db, query):
        impossible = query.with_constraint(
            query.constraint.__class__(
                query.constraint.spec, ConstraintOp.EQ, 1e9
            )
        )
        run = BinSearch().run(MemoryBackend(db), impossible)
        assert not run.satisfied
        assert all(score > 0 for score in run.pscores)

    def test_probe_budget_respected(self, db, query):
        run = BinSearch(probes_per_dim=4).run(MemoryBackend(db), query)
        # origin + per-dim (cap + probes + landing) at most.
        assert run.details["probes"] <= 1 + 2 * (1 + 4 + 1)


class TestTQGen:
    def test_low_error(self, db, query):
        run = TQGen(grid_points=5, rounds=5).run(MemoryBackend(db), query)
        assert run.error <= 0.05
        assert run.satisfied

    def test_query_budget_is_grid_times_rounds(self, db, query):
        run = TQGen(grid_points=3, rounds=2, convergence_factor=1e-9).run(
            MemoryBackend(db), query
        )
        assert run.details["queries"] == 3 * 3 * 2

    def test_exponential_in_dimensionality(self, db):
        """The Figure 9 blow-up, in query counts."""
        runs = []
        for d, bounds in [
            (1, {"x": 30.0}),
            (2, {"x": 30.0, "y": 30.0}),
            (3, {"x": 30.0, "y": 30.0, "z": 30.0}),
        ]:
            query = count_query("data", bounds, target=2000)
            run = TQGen(
                grid_points=4, rounds=2, convergence_factor=1e-9
            ).run(MemoryBackend(db), query)
            runs.append(run.details["queries"])
        assert runs == [8, 32, 128]

    def test_parameter_validation(self):
        with pytest.raises(QueryModelError):
            TQGen(grid_points=1)
        with pytest.raises(QueryModelError):
            TQGen(rounds=0)
        with pytest.raises(QueryModelError):
            TQGen(convergence_factor=0)

    def test_allow_any_aggregate_extension(self, db):
        """What-if mode: TQGen driven by a SUM constraint."""
        from repro.core.aggregates import AggregateSpec, get_aggregate
        from repro.core.query import AggregateConstraint
        from repro.engine.expression import col

        query = count_query("data", {"x": 30.0}, target=1).with_constraint(
            AggregateConstraint(
                AggregateSpec(get_aggregate("SUM"), col("data.y")),
                ConstraintOp.EQ,
                120_000.0,
            )
        )
        run = TQGen(allow_any_aggregate=True, rounds=6).run(
            MemoryBackend(db), query
        )
        assert run.error < 0.2
