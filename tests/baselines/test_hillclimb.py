"""Tests for the Hill-Climbing baseline (paper Table 1)."""

import numpy as np
import pytest

from repro.baselines import HillClimbing
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.exceptions import QueryModelError
from tests.conftest import count_query


@pytest.fixture(scope="module")
def db() -> Database:
    rng = np.random.default_rng(55)
    database = Database()
    database.create_table(
        "data",
        {
            "x": rng.uniform(0, 100, 4000),
            "y": rng.uniform(0, 100, 4000),
        },
    )
    return database


class TestHillClimbing:
    def test_reaches_target(self, db):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=1200)
        run = HillClimbing().run(MemoryBackend(db), query)
        assert run.method == "HillClimbing"
        assert run.satisfied
        assert run.aggregate_value == pytest.approx(1200, rel=0.06)

    def test_count_only(self, db):
        from repro.core.aggregates import AggregateSpec, get_aggregate
        from repro.core.query import AggregateConstraint, ConstraintOp
        from repro.engine.expression import col

        query = count_query("data", {"x": 30.0}, target=10).with_constraint(
            AggregateConstraint(
                AggregateSpec(get_aggregate("AVG"), col("data.x")),
                ConstraintOp.EQ,
                20.0,
            )
        )
        with pytest.raises(QueryModelError, match="only supports"):
            HillClimbing().run(MemoryBackend(db), query)

    def test_probe_budget(self, db):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=1200)
        run = HillClimbing(max_moves=5).run(MemoryBackend(db), query)
        # 1 origin + <= max_moves * 2d neighbour probes.
        assert run.details["probes"] <= 1 + 5 * 4

    def test_ignores_proximity(self, db):
        """Like TQGen, hill climbing lands wherever the local search
        takes it; ACQUIRE's minimal-refinement answer is no worse."""
        from repro.core.acquire import Acquire, AcquireConfig

        query = count_query("data", {"x": 30.0, "y": 30.0}, target=1200)
        hill = HillClimbing().run(MemoryBackend(db), query)
        acquire = Acquire(MemoryBackend(db)).run(
            query, AcquireConfig(gamma=10, delta=0.05)
        )
        assert acquire.best.qscore <= hill.qscore + 1e-9

    def test_parameter_validation(self):
        with pytest.raises(QueryModelError):
            HillClimbing(max_moves=0)
        with pytest.raises(QueryModelError):
            HillClimbing(initial_step_fraction=0.0)
        with pytest.raises(QueryModelError):
            HillClimbing(initial_step_fraction=1.5)

    def test_runner_dispatch(self, db):
        from repro.harness.runner import run_method

        query = count_query("data", {"x": 30.0, "y": 30.0}, target=1200)
        run = run_method("HillClimbing", MemoryBackend(db), query)
        assert run.method == "HillClimbing"
