"""Tests for the Skyline baseline (paper Table 1's tuple-oriented row)."""

import numpy as np
import pytest

from repro.baselines import Skyline, TopK
from repro.baselines.skyline import skyline_bands
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sqlite_backend import SQLiteBackend
from repro.exceptions import EngineError, QueryModelError
from tests.conftest import count_query


@pytest.fixture(scope="module")
def db() -> Database:
    rng = np.random.default_rng(66)
    database = Database()
    database.create_table(
        "data",
        {
            "x": rng.uniform(0, 100, 3000),
            "y": rng.uniform(0, 100, 3000),
        },
    )
    return database


class TestSkylineBands:
    def test_simple_layers(self):
        needs = np.array(
            [
                [0.0, 0.0],  # band 0 (dominates everything)
                [1.0, 1.0],  # band 1
                [0.5, 2.0],  # band 1 (incomparable with [1,1]? no:
                             # [0,0] dominates all; [1,1] vs [0.5,2]
                             # are incomparable -> both band 1)
                [2.0, 2.0],  # band 2
            ]
        )
        bands = skyline_bands(needs, max_bands=10)
        assert bands.tolist() == [0, 1, 1, 2]

    def test_all_incomparable_is_one_band(self):
        needs = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        assert skyline_bands(needs, 10).tolist() == [0, 0, 0, 0]

    def test_duplicates_share_band(self):
        needs = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert skyline_bands(needs, 10).tolist() == [0, 0]

    def test_max_bands_cap(self):
        needs = np.arange(6, dtype=np.float64).reshape(6, 1)
        bands = skyline_bands(needs, max_bands=3)
        assert bands.tolist() == [0, 1, 2, 3, 3, 3]


class TestSkylineTechnique:
    def test_reaches_cardinality(self, db):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=900)
        run = Skyline().run(MemoryBackend(db), query)
        assert run.satisfied
        assert run.aggregate_value == 900

    def test_balanced_selection_vs_topk(self, db):
        """Skyline admits tuples band by band, keeping dimensions more
        balanced than Top-k's total-distance ranking; neither should be
        wildly worse than the other in bounding-query refinement."""
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=900)
        skyline = Skyline().run(MemoryBackend(db), query)
        topk = TopK().run(MemoryBackend(db), query)
        assert skyline.qscore <= topk.qscore * 3
        assert topk.qscore <= skyline.qscore * 3

    def test_requires_memory_layer(self, db):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=900)
        with pytest.raises(EngineError, match="memory"):
            Skyline().run(SQLiteBackend(db), query)

    def test_count_only(self, db):
        from repro.core.aggregates import AggregateSpec, get_aggregate
        from repro.core.query import AggregateConstraint, ConstraintOp
        from repro.engine.expression import col

        query = count_query("data", {"x": 30.0}, target=1).with_constraint(
            AggregateConstraint(
                AggregateSpec(get_aggregate("SUM"), col("data.y")),
                ConstraintOp.GE,
                10.0,
            )
        )
        with pytest.raises(QueryModelError, match="only supports"):
            Skyline().run(MemoryBackend(db), query)

    def test_parameter_validation(self):
        with pytest.raises(QueryModelError):
            Skyline(max_bands=0)

    def test_runner_dispatch(self, db):
        from repro.harness.runner import run_method

        query = count_query("data", {"x": 30.0, "y": 30.0}, target=900)
        run = run_method("Skyline", MemoryBackend(db), query)
        assert run.method == "Skyline"
