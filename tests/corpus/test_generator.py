"""Determinism and well-formedness of the corpus generator."""

from __future__ import annotations

import pytest

from repro.corpus.generator import (
    CORPUS_TOP_K,
    TripleSpec,
    build_database,
    build_ontologies,
    realize,
    sample_specs,
)
from repro.corpus.manifest import digest_hex
from repro.exceptions import CorpusError

SMALL_COUNTS = {
    "expansion": 3, "contraction": 3, "categorical": 3, "multi": 3,
}


@pytest.fixture(scope="module")
def specs():
    return sample_specs(7, SMALL_COUNTS)


class TestDeterminism:
    def test_same_seed_same_specs(self, specs):
        again = sample_specs(7, SMALL_COUNTS)
        assert specs == again

    def test_different_seed_different_specs(self, specs):
        other = sample_specs(8, SMALL_COUNTS)
        assert specs != other

    def test_dataset_rebuild_digest_stable(self, specs):
        for spec in specs:
            first = digest_hex(build_database(spec.dataset))
            again = digest_hex(build_database(dict(spec.dataset)))
            assert first == again, spec.triple_id


class TestShape:
    def test_family_mix(self, specs):
        families = sorted(spec.family for spec in specs)
        assert families == sorted(
            family
            for family, count in SMALL_COUNTS.items()
            for _ in range(count)
        )

    def test_specs_realize_and_bind(self, specs):
        for spec in specs:
            database, query, config = realize(spec)
            assert query.dimensionality >= 1
            assert config.repartition_iterations == 0
            assert config.top_k == spec.top_k == CORPUS_TOP_K

    def test_multi_specs_carry_extra_constraints(self, specs):
        for spec in specs:
            _, query, _ = realize(spec)
            expected = 2 if spec.family == "multi" else 1
            assert len(query.constraints) == expected, spec.triple_id

    def test_json_round_trip(self, specs):
        for spec in specs:
            assert TripleSpec.from_json(spec.to_json()) == spec


class TestGuards:
    def test_unknown_dataset_kind(self):
        with pytest.raises(CorpusError, match="dataset kind"):
            build_database({"kind": "nope"})

    def test_unknown_ontology(self):
        with pytest.raises(CorpusError, match="ontology"):
            build_ontologies("nope")

    def test_unknown_family(self):
        with pytest.raises(CorpusError, match="family"):
            sample_specs(0, {"nope": 1})

    def test_cities_ontology_is_two_level(self):
        ontologies = build_ontologies("cities")
        assert ontologies is not None
        assert ontologies["city"].depth == 2
