"""Differential oracle suite: random fresh triples, never committed.

Where the gate pins a fixed corpus, this suite draws *new* random
(dataset, ACQ) pairs every run via hypothesis, certifies them with the
exhaustive oracle and cross-checks the full driver on all four engine
configurations — the generator's planting logic itself is under test
here too (a planted target must always be satisfiable).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.gate import check_triple
from repro.corpus.generator import _FAMILY_SAMPLERS
from repro.corpus.manifest import label_spec

FAMILIES = sorted(_FAMILY_SAMPLERS)

_settings = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.slow
class TestDifferential:
    @_settings
    @given(
        seed=st.integers(min_value=10_000, max_value=99_999),
        family=st.sampled_from(FAMILIES),
    )
    def test_random_triple_matches_oracle_on_all_engines(
        self, seed, family
    ):
        import random

        sampler = _FAMILY_SAMPLERS[family]
        rng = random.Random(f"diff:{seed}:{family}")
        spec = sampler(rng, f"diff-{family}-{seed}")
        labeled, certificate = label_spec(spec)
        assert certificate.satisfied  # planting guarantees this
        check = check_triple(labeled)
        assert check.passed, (
            f"{spec.triple_id}: " + "; ".join(check.problems)
        )
