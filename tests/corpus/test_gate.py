"""The committed-corpus quality gate.

Tier-1 checks a deterministic cross-family subset of the committed
manifest (the full 205-triple sweep runs under ``make corpus-gate`` and
the CI ``corpus-gate`` job, marked slow here); plus unit tests that the
gate actually *fails*, readably, when a label or ranking drifts.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.corpus.gate import check_triple, run_gate
from repro.corpus.manifest import (
    DEFAULT_MANIFEST_PATH,
    LabeledTriple,
    load_manifest,
)


@pytest.fixture(scope="module")
def manifest():
    return load_manifest(DEFAULT_MANIFEST_PATH)


def _subset(manifest, per_family: int):
    picked, seen = [], {}
    for triple in manifest.triples:
        family = triple.spec.family
        if seen.get(family, 0) < per_family:
            seen[family] = seen.get(family, 0) + 1
            picked.append(triple)
    return picked


class TestCommittedManifest:
    def test_manifest_is_large_and_diverse(self, manifest):
        assert len(manifest.triples) >= 200
        families = manifest.families
        assert set(families) == {
            "expansion", "contraction", "categorical", "multi"
        }
        assert all(count >= 40 for count in families.values())

    def test_all_labels_certified_satisfiable(self, manifest):
        assert all(triple.satisfied for triple in manifest.triples)
        assert all(triple.ranking_size >= 1 for triple in manifest.triples)

    def test_subset_passes_gate(self, manifest):
        # Four triples per family: digest, oracle re-certification and
        # all four engine configs, end to end.
        for triple in _subset(manifest, per_family=4):
            check = check_triple(triple)
            assert check.passed, (
                f"{check.triple_id}: " + "; ".join(check.problems)
            )


@pytest.mark.slow
class TestFullGate:
    def test_every_triple_passes(self, manifest):
        report = run_gate(manifest)
        assert report.passed, report.render()


class TestGateDetectsDrift:
    def _tampered(self, triple: LabeledTriple, **label_changes):
        return dataclasses.replace(triple, **label_changes)

    def test_digest_drift_is_reported(self, manifest):
        triple = self._tampered(manifest.triples[0], digest="0" * 16)
        check = check_triple(triple)
        assert not check.passed
        assert any("digest" in problem for problem in check.problems)

    def test_label_drift_is_reported(self, manifest):
        victim = manifest.triples[0]
        entry = dataclasses.replace(
            victim.top_closed[0], qscore=victim.top_closed[0].qscore + 1.0
        )
        triple = self._tampered(
            victim, top_closed=(entry,) + victim.top_closed[1:]
        )
        check = check_triple(triple)
        assert not check.passed
        assert any("drifted" in problem for problem in check.problems)

    def test_report_render_is_readable(self, manifest):
        triple = self._tampered(manifest.triples[0], digest="0" * 16)
        report = run_gate(
            dataclasses.replace(manifest, triples=(triple,))
        )
        text = report.render()
        assert "FAIL" in text
        assert triple.spec.triple_id in text
        passing = run_gate(
            dataclasses.replace(manifest, triples=manifest.triples[:1])
        )
        assert "PASS" in passing.render()
