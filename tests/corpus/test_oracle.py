"""Unit tests of the exhaustive refinement-lattice oracle."""

from __future__ import annotations

import pytest

from repro.core.acquire import AcquireConfig
from repro.core.query import ConstraintOp
from repro.corpus.oracle import certify, grid_point_values
from repro.engine.memory_backend import MemoryBackend
from repro.exceptions import CorpusError

from tests.conftest import count_query


def _config(**overrides):
    defaults = dict(gamma=20.0, delta=0.05, repartition_iterations=0)
    defaults.update(overrides)
    return AcquireConfig(**defaults)


class TestDirectionChoice:
    def test_ge_constraint_expands(self, small_db):
        query = count_query("data", {"x": 40.0}, 260.0, ConstraintOp.GE)
        cert = certify(MemoryBackend(small_db), query, _config())
        assert cert.direction == "expansion"

    def test_le_constraint_contracts(self, small_db):
        query = count_query("data", {"x": 60.0}, 100.0, ConstraintOp.LE)
        cert = certify(MemoryBackend(small_db), query, _config())
        assert cert.direction == "contraction"

    def test_eq_overshoot_delegates_to_contraction(self, small_db):
        # Plant an achievable contraction target: measure the COUNT at
        # one interior shrink point, then constrain EQ to it. The
        # original query overshoots, so the driver delegates to the
        # contraction extension; the oracle must enumerate the same
        # lattice and find the planted point.
        layer = MemoryBackend(small_db)
        probe = count_query("data", {"x": 60.0}, 1.0, ConstraintOp.EQ)
        config = _config()
        target = grid_point_values(
            layer, probe, config, (2,), contraction=True
        )[0]
        query = count_query("data", {"x": 60.0}, target, ConstraintOp.EQ)
        cert = certify(layer, query, config)
        assert cert.original_value > target * (1 + config.delta)
        assert cert.direction == "contraction"
        assert cert.satisfied
        assert cert.best.error == 0.0


class TestRanking:
    def test_ranking_sorted_and_satisfying(self, small_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, 120.0,
                            ConstraintOp.GE)
        config = _config()
        cert = certify(MemoryBackend(small_db), query, config)
        assert cert.satisfied
        keys = [entry.rank_key for entry in cert.ranking]
        assert keys == sorted(keys)
        assert all(entry.error <= config.delta for entry in cert.ranking)

    def test_top_closed_extends_through_ties(self, small_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, 120.0,
                            ConstraintOp.GE)
        cert = certify(MemoryBackend(small_db), query, _config())
        k = 2
        closed = cert.top_closed(k)
        assert len(closed) >= min(k, len(cert.ranking))
        if len(cert.ranking) > len(closed):
            # The first entry past the closed prefix must break the tie.
            assert (
                cert.ranking[len(closed)].rank_key != closed[-1].rank_key
            )

    def test_best_is_first_rank(self, small_db):
        query = count_query("data", {"x": 40.0}, 250.0, ConstraintOp.GE)
        cert = certify(MemoryBackend(small_db), query, _config())
        assert cert.best is cert.ranking[0]

    def test_unsatisfiable_reports_closest(self, small_db):
        # COUNT can never exceed the table size under delta=0.
        query = count_query("data", {"x": 40.0}, 1200.0, ConstraintOp.EQ)
        cert = certify(
            MemoryBackend(small_db), query, _config(delta=0.0)
        )
        assert not cert.satisfied
        assert cert.ranking == ()
        assert cert.closest is not None
        assert cert.closest.error > 0

    def test_entry_values_track_constraints(self, small_db):
        query = count_query("data", {"x": 40.0}, 250.0, ConstraintOp.GE)
        cert = certify(MemoryBackend(small_db), query, _config())
        for entry in cert.ranking[:5]:
            assert len(entry.values) == len(query.constraints) == 1


class TestGuards:
    def test_max_points_ceiling_raises(self, small_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, 200.0,
                            ConstraintOp.GE)
        with pytest.raises(CorpusError, match="ceiling"):
            certify(
                MemoryBackend(small_db), query, _config(), max_points=4
            )
