"""Concurrency and persistence suite for the sharded tile pipeline.

Proves the contracts of ``docs/PARALLELISM.md`` (sharded tiles) and
``docs/EXPLORE_MODES.md`` (persistent cache tier):

* a :class:`TiledGridExplorer` with ``tile_workers > 1`` produces
  block states **bit-identical** to the serial tiled explorer and the
  serial incremental :class:`~repro.core.explore.Explorer`, on every
  backend (exact, estimation, sampling), for randomized tile shapes
  and worker counts (hypothesis);
* a full ACQUIRE run is answer-identical at any worker count;
* :class:`PersistentGridCache` round-trips tensors through its
  checksummed file format, detects corruption (truncation, bit flips)
  as a counted miss that deletes the bad file, never serves a torn
  (unpublished) temp file, enforces its byte budget as LRU across
  instances, and rejects oversized/non-float tensors as counted no-ops;
* the two-tier :class:`GridTensorCache` promotes persistent hits into
  memory so a *fresh process* (modelled as a fresh cache instance over
  the same directory) serves tensors without backend work;
* the base-class ``execute_cells`` fallback reuses one thread pool
  across calls instead of constructing one per batch;
* the ``auto`` planner short-circuits to ``materialized`` with reason
  ``warm-cache`` when the finished block tensor is already cached.

Aggregate values are multiples of 0.25 (exact binary fractions), as in
``tests/core/test_grid_explore.py``, so bit-identical assertions cannot
be defeated by legitimate reassociation.
"""

import os
import textwrap
import threading
import time

import numpy as np
import pytest

import repro
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.expand import make_traversal
from repro.core.explore import Explorer
from repro.core.grid_cache import (
    GridTensorCache,
    PersistentGridCache,
    TensorKey,
    database_digest,
)
from repro.core.grid_explore import TiledGridExplorer
from repro.core.interval import Interval
from repro.core.plan import choose_explore_mode
from repro.core.predicate import Direction, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.core.refined_space import RefinedSpace
from repro.engine.backends import EvaluationLayer
from repro.engine.catalog import Database
from repro.engine.expression import col
from repro.engine.histogram_backend import HistogramBackend
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sampling import SamplingBackend
from repro.engine.sqlite_backend import SQLiteBackend
from repro.exceptions import QueryModelError, SearchError

BACKENDS = ("memory", "sqlite", "histogram", "sampling")


def _database(seed: int, n: int) -> Database:
    """Random table; dimension and value columns are exact binary
    fractions (multiples of 0.25)."""
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table(
        "t",
        {
            "x": np.floor(rng.uniform(0, 400, n)) / 4.0,
            "y": np.floor(rng.uniform(0, 400, n)) / 4.0,
            "z": np.floor(rng.uniform(0, 400, n)) / 4.0,
            "v": np.floor(rng.uniform(-200, 200, n)) / 4.0,
        },
    )
    return database


def _query(
    aggregate="COUNT",
    bounds=(30.0, 30.0),
    columns=("x", "y"),
    target=100.0,
    op=ConstraintOp.EQ,
) -> Query:
    predicates = [
        SelectPredicate(
            name=f"p{i}",
            expr=col("t." + column),
            interval=Interval(0.0, bound),
            direction=Direction.UPPER,
            denominator=100.0,
        )
        for i, (column, bound) in enumerate(zip(columns, bounds))
    ]
    agg = (
        get_aggregate(aggregate) if isinstance(aggregate, str) else aggregate
    )
    attr = col("t.v") if agg.needs_attribute else None
    constraint = AggregateConstraint(AggregateSpec(agg, attr), op, target)
    return Query.build("q", ("t",), predicates, constraint)


def _make_layer(backend_name: str, database: Database) -> EvaluationLayer:
    if backend_name == "memory":
        return MemoryBackend(database)
    if backend_name == "sqlite":
        return SQLiteBackend(database)
    if backend_name == "histogram":
        return HistogramBackend(database)
    if backend_name == "sampling":
        return SamplingBackend(database, fraction=0.5, seed=3)
    raise AssertionError(backend_name)


def _grid_coords(space: RefinedSpace) -> list[tuple[int, ...]]:
    return list(make_traversal(space, "lp"))


def _sharded(
    backend_name,
    database,
    query,
    space,
    tile_shape,
    workers,
    cache=None,
):
    layer = _make_layer(backend_name, database)
    explorer = TiledGridExplorer(
        layer,
        layer.prepare(query, [100.0, 100.0]),
        space,
        query.constraint.spec.aggregate,
        tile_shape=tile_shape,
        tile_workers=workers,
        cache=cache,
    )
    return explorer, layer


# ----------------------------------------------------------------------
# Sharded == serial, bit-identical
# ----------------------------------------------------------------------
class TestShardedMatchesSerial:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_all_backends(self, backend_name):
        database = _database(seed=31, n=180)
        query = _query("SUM")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial_layer = _make_layer(backend_name, database)
        serial = Explorer(
            serial_layer,
            serial_layer.prepare(query, [100.0, 100.0]),
            space,
            query.constraint.spec.aggregate,
        )
        sharded, layer = _sharded(
            backend_name, database, query, space, (3, 3), workers=3
        )
        try:
            sharded.prime_cells([space.max_coords])
            for coords in _grid_coords(space):
                assert sharded.block_state(coords) == serial.block_state(
                    coords
                ), coords
            assert layer.stats.parallel_tiles > 0
        finally:
            sharded.close()

    @pytest.mark.parametrize("aggregate", ("COUNT", "MAX", "AVG"))
    def test_aggregates_match_serial_tiled(self, aggregate):
        database = _database(seed=32, n=160)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial, _ = _sharded(
            "memory", database, query, space, (2, 4), workers=1
        )
        sharded, _ = _sharded(
            "memory", database, query, space, (2, 4), workers=4
        )
        try:
            serial.prime_cells([space.max_coords])
            sharded.prime_cells([space.max_coords])
            assert set(serial._blocks) == set(sharded._blocks)
            for tile, blocks in serial._blocks.items():
                assert np.array_equal(
                    blocks, sharded._blocks[tile]
                ), tile
        finally:
            serial.close()
            sharded.close()

    @settings(max_examples=20, deadline=None)
    @given(
        width_x=st.integers(min_value=1, max_value=5),
        width_y=st.integers(min_value=1, max_value=5),
        workers=st.integers(min_value=2, max_value=5),
    )
    def test_hypothesis_shapes_and_workers(self, width_x, width_y, workers):
        database = _database(seed=33, n=120)
        query = _query("SUM")
        space = RefinedSpace(query, 16.0, [40.0, 40.0])
        serial, _ = _sharded(
            "memory", database, query, space, (width_x, width_y), workers=1
        )
        sharded, _ = _sharded(
            "memory",
            database,
            query,
            space,
            (width_x, width_y),
            workers=workers,
        )
        try:
            serial.prime_cells([space.max_coords])
            sharded.prime_cells([space.max_coords])
            for coords in _grid_coords(space):
                assert sharded.block_state(coords) == serial.block_state(
                    coords
                ), (coords, width_x, width_y, workers)
        finally:
            serial.close()
            sharded.close()

    def test_invalid_worker_count(self):
        database = _database(seed=34, n=30)
        query = _query()
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        with pytest.raises(SearchError):
            _sharded("memory", database, query, space, None, workers=0)


# ----------------------------------------------------------------------
# End-to-end: AcquireResult identical at every worker count
# ----------------------------------------------------------------------
class TestEndToEndIdentity:
    @pytest.mark.parametrize("backend_name", ["memory", "sqlite"])
    def test_full_run(self, backend_name):
        database = _database(seed=35, n=220)
        query = _query("COUNT", target=120.0)

        def run(workers):
            layer = _make_layer(backend_name, database)
            config = AcquireConfig(
                gamma=20.0,
                explore_mode="tiled",
                materialize_cell_cap=9,
                tile_workers=workers,
            )
            return Acquire(layer).run(query, config)

        serial, sharded = run(1), run(4)
        assert [a.pscores for a in sharded.answers] == [
            a.pscores for a in serial.answers
        ]
        assert [a.qscore for a in sharded.answers] == [
            a.qscore for a in serial.answers
        ]
        assert [a.aggregate_value for a in sharded.answers] == [
            a.aggregate_value for a in serial.answers
        ]
        assert sharded.stats.tile_workers == 4
        assert serial.stats.tile_workers == 1
        assert sharded.stats.execution.parallel_tiles > 0


# ----------------------------------------------------------------------
# PersistentGridCache: file format, corruption, torn writes, LRU
# ----------------------------------------------------------------------
class TestPersistentGridCache:
    def test_roundtrip(self, tmp_path):
        store = PersistentGridCache(str(tmp_path))
        tensor = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        assert store.put("k", tensor)
        out = store.get("k")
        assert out is not None and np.array_equal(out, tensor)
        assert out.dtype == np.float64 and not out.flags.writeable
        assert store.hits == 1 and store.stores == 1
        assert store.hit_bytes == tensor.nbytes
        assert store.contains("k") and not store.contains("other")
        assert store.get("other") is None
        assert store.misses == 1

    def test_scalar_roundtrip(self, tmp_path):
        store = PersistentGridCache(str(tmp_path))
        tensor = np.float64(3.25).reshape(())
        assert store.put("s", np.asarray(tensor))
        out = store.get("s")
        assert out is not None and out.shape == () and float(out) == 3.25

    @pytest.mark.parametrize("damage", ["truncate", "flip"])
    def test_corruption_is_a_counted_miss_and_unlinks(
        self, tmp_path, damage
    ):
        store = PersistentGridCache(str(tmp_path))
        store.put("k", np.ones((4, 4)))
        path = store.file_for("k")
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        if damage == "truncate":
            data = data[: len(data) // 2]
        else:
            data[-1] ^= 0xFF  # flip bits inside the payload
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        assert store.get("k") is None
        assert store.corrupt == 1 and store.misses == 1
        assert not os.path.exists(path), "corrupt file must be deleted"

    def test_torn_publish_never_served(self, tmp_path):
        """A crash between temp write and rename leaves only a .tmp
        file; it must be invisible to readers and a later successful
        publish must win."""
        store = PersistentGridCache(str(tmp_path))
        tensor = np.full((3, 3), 2.5)
        # Simulate the crash: the encoded payload sits under the temp
        # name (even a *complete* one) but was never os.replace'd.
        temp = os.path.join(str(tmp_path), f".tmp-{os.getpid()}-999")
        with open(temp, "wb") as handle:
            handle.write(store._encode(tensor)[: 10])
        assert store.get("k") is None
        assert store.misses == 1 and store.corrupt == 0
        # Recovery: a clean publish over the same key is served whole.
        assert store.put("k", tensor)
        out = store.get("k")
        assert out is not None and np.array_equal(out, tensor)

    def test_lru_across_instances(self, tmp_path):
        entry_bytes = len(
            PersistentGridCache(str(tmp_path))._encode(np.ones(16))
        )
        first = PersistentGridCache(
            str(tmp_path), max_bytes=2 * entry_bytes
        )
        first.put("a", np.ones(16))
        os.utime(first.file_for("a"), (1.0, 1.0))  # force 'a' oldest
        first.put("b", np.full(16, 2.0))
        # A different instance over the same directory (a stand-in for
        # another process) inserts past the budget: oldest-mtime 'a'
        # must be evicted, not the newcomer.
        second = PersistentGridCache(
            str(tmp_path), max_bytes=2 * entry_bytes
        )
        second.put("c", np.full(16, 3.0))
        assert second.evictions == 1
        assert not second.contains("a")
        assert second.contains("b") and second.contains("c")
        assert second.total_bytes() <= 2 * entry_bytes

    def test_oversized_and_nonfloat_rejected(self, tmp_path):
        store = PersistentGridCache(str(tmp_path), max_bytes=64)
        assert not store.put("big", np.ones(1024))
        assert not store.put(
            "obj", np.array([(1.0, 2.0)], dtype=object)
        )
        assert store.rejected == 2 and store.stores == 0
        assert store.total_bytes() == 0

    def test_invalid_budget(self, tmp_path):
        with pytest.raises(QueryModelError):
            PersistentGridCache(str(tmp_path), max_bytes=0)

    def test_concurrent_readers_and_writers(self, tmp_path):
        """Hammer one directory from several threads: every successful
        read returns a complete, checksum-valid tensor."""
        store = PersistentGridCache(str(tmp_path))
        tensors = {
            f"k{i}": np.full((8, 8), float(i) + 0.25) for i in range(4)
        }
        errors: list[str] = []

        def worker(repeat: int) -> None:
            for _ in range(repeat):
                for key, tensor in tensors.items():
                    store.put(key, tensor)
                    out = store.get(key)
                    if out is not None and not np.array_equal(out, tensor):
                        errors.append(key)

        threads = [
            threading.Thread(target=worker, args=(10,)) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.corrupt == 0

    def test_budget_ignores_inflight_temp_files(self, tmp_path):
        """A live writer's temp file is neither an entry nor a victim."""
        entry_bytes = len(
            PersistentGridCache(str(tmp_path))._encode(np.ones(16))
        )
        store = PersistentGridCache(
            str(tmp_path), max_bytes=2 * entry_bytes
        )
        temp = os.path.join(
            str(tmp_path), f"{store.TEMP_PREFIX}{os.getpid()}-777"
        )
        with open(temp, "wb") as handle:
            handle.write(b"x" * (4 * entry_bytes))
        store.put("a", np.ones(16))
        store.put("b", np.full(16, 2.0))
        # The giant temp file would blow the budget if counted; both
        # published entries must survive and the temp must not be
        # reaped (it is younger than the grace period).
        assert store.evictions == 0
        assert store.contains("a") and store.contains("b")
        assert store.total_bytes() == 2 * entry_bytes
        assert os.path.exists(temp)

    def test_orphan_temp_files_reaped_after_grace(self, tmp_path):
        store = PersistentGridCache(str(tmp_path))
        old = os.path.join(str(tmp_path), f"{store.TEMP_PREFIX}1-0")
        young = os.path.join(str(tmp_path), f"{store.TEMP_PREFIX}1-1")
        for temp in (old, young):
            with open(temp, "wb") as handle:
                handle.write(b"partial")
        stale = time.time() - store.TEMP_REAP_AGE_S - 60.0
        os.utime(old, (stale, stale))
        store.put("k", np.ones(8))  # any insert runs the sweep
        assert not os.path.exists(old), "dead writer's temp must be reaped"
        assert os.path.exists(young), "live writer's temp must survive"

    def test_eviction_skips_entries_hit_since_listing(
        self, tmp_path, monkeypatch
    ):
        """The re-stat guard: an entry whose mtime advanced after the
        LRU listing (a concurrent hit) is no longer the victim."""
        entry_bytes = len(
            PersistentGridCache(str(tmp_path))._encode(np.ones(16))
        )
        store = PersistentGridCache(
            str(tmp_path), max_bytes=2 * entry_bytes
        )
        store.put("a", np.ones(16))
        store.put("b", np.full(16, 2.0))
        assert store.evictions == 0
        store.max_bytes = entry_bytes  # now over budget by one entry
        # Serve every listing with stale mtimes, as if each entry was
        # hit between the listing and the unlink attempt.
        real = store._published

        def stale_listing():
            return [
                (mtime - 10.0, size, path)
                for mtime, size, path in real()
            ]

        monkeypatch.setattr(store, "_published", stale_listing)
        store._enforce_budget()
        assert store.evictions == 0
        assert store.contains("a") and store.contains("b")

    def test_two_process_stress(self, tmp_path):
        """Hammer one cache directory from a second live process while
        this one reads and writes: no torn reads, no corruption, and a
        tight budget keeps eviction churn going throughout."""
        import subprocess
        import sys as _sys

        entry_bytes = len(
            PersistentGridCache(str(tmp_path))._encode(np.ones(64))
        )
        budget = 3 * entry_bytes
        script = textwrap.dedent(
            """
            import sys

            import numpy as np

            from repro.core.grid_cache import PersistentGridCache

            path, budget = sys.argv[1], int(sys.argv[2])
            store = PersistentGridCache(path, max_bytes=budget)
            for round_ in range(60):
                for i in range(4):
                    tensor = np.full(64, float(i) + 0.5)
                    store.put(f"k{i}", tensor)
                    out = store.get(f"k{i}")
                    if out is not None and not np.array_equal(out, tensor):
                        sys.exit(3)
            sys.exit(4 if store.corrupt else 0)
            """
        )
        src = os.path.join(
            os.path.dirname(repro.__file__), os.pardir
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(src), env.get("PYTHONPATH", "")]
        )
        peer = subprocess.Popen(
            [_sys.executable, "-c", script, str(tmp_path), str(budget)],
            env=env,
        )
        store = PersistentGridCache(str(tmp_path), max_bytes=budget)
        mismatches = 0
        while peer.poll() is None:
            for i in range(4):
                tensor = np.full(64, float(i) + 0.5)
                store.put(f"k{i}", tensor)
                out = store.get(f"k{i}")
                if out is not None and not np.array_equal(out, tensor):
                    mismatches += 1
        assert peer.wait() == 0, "peer process saw corruption"
        assert mismatches == 0
        assert store.corrupt == 0


# ----------------------------------------------------------------------
# Two-tier GridTensorCache
# ----------------------------------------------------------------------
class TestTwoTierCache:
    def _key(self, kind="cells"):
        return TensorKey(
            memory=("token", "fp", kind), persistent=("stable", "fp", kind)
        )

    def test_promotion_from_disk(self, tmp_path):
        tensor = np.arange(9, dtype=np.float64).reshape(3, 3)
        first = GridTensorCache(
            persistent=PersistentGridCache(str(tmp_path))
        )
        first.put(self._key(), tensor)
        # A fresh cache over the same directory models a new process:
        # its memory tier is empty, the file tier is not.
        second = GridTensorCache(
            persistent=PersistentGridCache(str(tmp_path))
        )
        found, tier = second.lookup(self._key())
        assert tier == "persistent" and np.array_equal(found, tensor)
        assert second.persistent_hits == 1
        # The hit was promoted: the next lookup is a memory hit.
        found, tier = second.lookup(self._key())
        assert tier == "memory"

    def test_memory_only_key_skips_disk(self, tmp_path):
        persistent = PersistentGridCache(str(tmp_path))
        cache = GridTensorCache(persistent=persistent)
        cache.put("plain-key", np.ones(4))
        assert persistent.total_bytes() == 0
        assert cache.get("plain-key") is not None

    def test_contains_peeks_both_tiers(self, tmp_path):
        key = self._key()
        first = GridTensorCache(
            persistent=PersistentGridCache(str(tmp_path))
        )
        first.put(key, np.ones(4))
        second = GridTensorCache(
            persistent=PersistentGridCache(str(tmp_path))
        )
        assert second.contains(key)
        assert second.hits == 0 and second.persistent_hits == 0

    def test_oversized_insert_is_counted_noop(self):
        cache = GridTensorCache(max_bytes=100)
        cache.put("big", np.ones(1024))
        assert cache.rejected == 1
        assert cache.get("big") is None
        assert cache.current_bytes == 0

    def test_object_tensors_stay_memory_only(self, tmp_path):
        persistent = PersistentGridCache(str(tmp_path))
        cache = GridTensorCache(persistent=persistent)
        states = np.empty((2, 2), dtype=object)
        states[:] = [[(1.0,), (2.0,)], [(3.0,), (4.0,)]]
        cache.put(self._key(), states)
        assert cache.get(self._key()) is not None
        assert persistent.stores == 0 and persistent.rejected == 1

    def test_key_for_persistent_component(self, tmp_path):
        database = _database(seed=36, n=40)
        layer = MemoryBackend(database)
        query = _query()
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        key = GridTensorCache.key_for(layer, query, space, kind="blocks")
        assert isinstance(key, TensorKey)
        assert key.persistent is not None
        assert ("MemoryBackend", database_digest(database)) in key.persistent
        # Same data in a different layer instance -> same persistent key
        # (this is what makes cross-process reuse possible).
        other = GridTensorCache.key_for(
            MemoryBackend(database), query, space, kind="blocks"
        )
        assert other.persistent == key.persistent
        assert other.memory != key.memory


# ----------------------------------------------------------------------
# Satellite: the execute_cells fallback reuses one pool
# ----------------------------------------------------------------------
class _CellOnlyLayer(EvaluationLayer):
    """Backend without a native bulk path — exercises the base-class
    ``execute_cells`` fallback."""

    def __init__(self, inner: EvaluationLayer) -> None:
        super().__init__()
        self._inner = inner

    def prepare(self, query, dim_caps=None):
        return self._inner.prepare(query, dim_caps)

    def useful_max_scores(self, prepared):
        return self._inner.useful_max_scores(prepared)

    def execute_cell(self, prepared, space, coords):
        self._count_query("cell")
        return self._inner.execute_cell(prepared, space, coords)

    def execute_box(self, prepared, scores):
        self._count_query("box")
        return self._inner.execute_box(prepared, scores)


class TestExecutorReuse:
    def test_pool_survives_across_batches(self):
        database = _database(seed=37, n=60)
        layer = _CellOnlyLayer(MemoryBackend(database))
        query = _query()
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        prepared = layer.prepare(query, [100.0, 100.0])
        coords = _grid_coords(space)
        layer.execute_cells(prepared, space, coords[:4], parallelism=2)
        pool = layer._cell_pool
        assert pool is not None
        layer.execute_cells(prepared, space, coords[4:8], parallelism=2)
        assert layer._cell_pool is pool, (
            "fallback must reuse one executor across batches"
        )
        # A different parallelism replaces the pool...
        layer.execute_cells(prepared, space, coords[:4], parallelism=3)
        assert layer._cell_pool is not pool
        # ...and close() releases it; the layer still works afterwards.
        layer.close()
        assert layer._cell_pool is None
        states = layer.execute_cells(
            prepared, space, coords[:2], parallelism=2
        )
        assert len(states) == 2

    def test_serial_path_needs_no_pool(self):
        database = _database(seed=38, n=40)
        layer = _CellOnlyLayer(MemoryBackend(database))
        query = _query()
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        prepared = layer.prepare(query, [100.0, 100.0])
        layer.execute_cells(
            prepared, space, _grid_coords(space)[:4], parallelism=1
        )
        assert layer._cell_pool is None


# ----------------------------------------------------------------------
# Planner: warm cache short-circuits to materialized
# ----------------------------------------------------------------------
class TestWarmCachePlan:
    def test_auto_prefers_warm_blocks(self):
        database = _database(seed=39, n=80)
        layer = MemoryBackend(database)
        query = _query()
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        cache = GridTensorCache()
        config = AcquireConfig(explore_mode="auto", grid_cache=cache)
        cold = choose_explore_mode(layer, query, space, config)
        assert cold.reason != "warm-cache"
        blocks_key = GridTensorCache.key_for(
            layer, query, space, kind="blocks"
        )
        shape = tuple(limit + 1 for limit in space.max_coords)
        cache.put(blocks_key, np.zeros(shape))
        warm = choose_explore_mode(layer, query, space, config)
        assert warm.mode == "materialized"
        assert warm.reason == "warm-cache"

    def test_warm_peek_does_not_touch_counters(self):
        database = _database(seed=40, n=80)
        layer = MemoryBackend(database)
        query = _query()
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        cache = GridTensorCache()
        blocks_key = GridTensorCache.key_for(
            layer, query, space, kind="blocks"
        )
        shape = tuple(limit + 1 for limit in space.max_coords)
        cache.put(blocks_key, np.zeros(shape))
        config = AcquireConfig(explore_mode="auto", grid_cache=cache)
        choose_explore_mode(layer, query, space, config)
        assert cache.hits == 0 and cache.misses == 0
