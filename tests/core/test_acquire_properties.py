"""Hypothesis property tests on the full ACQUIRE search.

Random small datasets and targets; the assertions are the paper's
Definition 1 guarantees, checked against exhaustive brute force:

(a) when any refined query within the search bounds meets the error
    threshold, ACQUIRE finds one (the paper cannot guarantee this
    formally — NP-hard — but claims "the constraint is met practically
    every time"; on grids, where ACQUIRE *enumerates* exhaustively per
    layer, it is in fact guaranteed and we assert it);
(b) the returned QScore is within gamma of the brute-force optimal
    grid refinement.
"""

import itertools
import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquire import Acquire, AcquireConfig
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from tests.conftest import count_query


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=40, max_value=400),
    st.floats(min_value=1.5, max_value=8.0),
    st.floats(min_value=0.05, max_value=0.3),
)
def test_definition1_guarantees(seed, n, growth, delta):
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table(
        "data",
        {"x": rng.uniform(0, 100, n), "y": rng.uniform(0, 100, n)},
    )
    gamma = 10.0
    probe = MemoryBackend(database)
    base = count_query("data", {"x": 40.0, "y": 40.0}, target=1)
    prepared = probe.prepare(base, [400.0, 400.0])
    original = probe.execute_box(prepared, (0.0, 0.0))[0]
    if original == 0:
        return  # degenerate draw: empty base query
    target = original * growth
    query = count_query("data", {"x": 40.0, "y": 40.0}, target=target)

    result = Acquire(MemoryBackend(database)).run(
        query, AcquireConfig(gamma=gamma, delta=delta)
    )

    # Brute force over the same grid the search uses (step gamma/2).
    step = gamma / 2
    useful = [
        min(400.0, score)
        for score in probe.useful_max_scores(prepared)
    ]
    best = math.inf
    axes = [range(int(math.ceil(u / step - 1e-9)) + 1) for u in useful]
    for coords in itertools.product(*axes):
        scores = tuple(c * step for c in coords)
        count = probe.execute_box(prepared, scores)[0]
        if abs(count - target) <= delta * target:
            best = min(best, sum(scores))

    if best < math.inf:
        # (a) a grid answer exists -> ACQUIRE satisfied the constraint
        assert result.satisfied, (seed, n, growth, delta)
        # (b) within gamma of the optimum.
        assert result.best.qscore <= best + gamma + 1e-6
    elif result.satisfied:
        # ACQUIRE may still satisfy via off-grid repartitioning; the
        # answer must genuinely meet the threshold.
        assert result.best.error <= delta + 1e-9
