"""Unit tests for interval arithmetic."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import Interval
from repro.exceptions import QueryModelError

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


class TestConstruction:
    def test_basic(self):
        interval = Interval(1.0, 5.0)
        assert interval.width == 4.0
        assert not interval.is_point

    def test_point(self):
        interval = Interval.point(3.0)
        assert interval.is_point
        assert interval.width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(QueryModelError):
            Interval(5.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(QueryModelError):
            Interval(math.nan, 1.0)

    def test_infinite_endpoints_allowed(self):
        interval = Interval(-math.inf, 10.0)
        assert interval.contains(-1e300)
        assert not interval.contains(11.0)


class TestOperations:
    def test_contains_closed(self):
        interval = Interval(0.0, 10.0)
        assert interval.contains(0.0)
        assert interval.contains(10.0)
        assert not interval.contains(10.0001)

    def test_expand_upper(self):
        assert Interval(0, 10).expand_upper(5) == Interval(0, 15)

    def test_expand_lower(self):
        assert Interval(0, 10).expand_lower(5) == Interval(-5, 10)

    def test_expand_both(self):
        assert Interval(0, 10).expand_both(2) == Interval(-2, 12)

    def test_negative_expansion_rejected(self):
        with pytest.raises(QueryModelError):
            Interval(0, 10).expand_upper(-1)

    def test_shrink(self):
        assert Interval(0, 10).shrink(2, 3) == Interval(2, 7)

    def test_overshrink_collapses_to_midpoint(self):
        shrunk = Interval(0, 10).shrink(8, 8)
        assert shrunk.is_point
        assert shrunk.lo == 5.0

    def test_intersects(self):
        assert Interval(0, 5).intersects(Interval(5, 10))
        assert not Interval(0, 5).intersects(Interval(6, 10))

    def test_str(self):
        assert str(Interval(0, 2.5)) == "[0, 2.5]"


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(finite, finite, st.floats(min_value=0, max_value=1e6))
    def test_expansion_preserves_containment(self, a, b, amount):
        lo, hi = min(a, b), max(a, b)
        interval = Interval(lo, hi)
        for expanded in (
            interval.expand_upper(amount),
            interval.expand_lower(amount),
            interval.expand_both(amount),
        ):
            assert expanded.lo <= interval.lo
            assert expanded.hi >= interval.hi
            assert expanded.width >= interval.width
