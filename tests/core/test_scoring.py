"""Unit and property tests for PScore/QScore (paper Equations 1-3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import Interval
from repro.core.scoring import LInfNorm, LpNorm, pscore_interval
from repro.exceptions import QueryModelError

pscores = st.lists(
    st.floats(min_value=0, max_value=1000, allow_nan=False),
    min_size=1,
    max_size=6,
)


class TestPScoreInterval:
    def test_paper_example3(self):
        """Q3' expands B.y from (0, 50) to (0, 60): PScore = 20."""
        assert pscore_interval(Interval(0, 50), Interval(0, 60)) == pytest.approx(20.0)

    def test_both_sides_counted(self):
        assert pscore_interval(
            Interval(0, 50), Interval(-10, 60)
        ) == pytest.approx(40.0)

    def test_point_interval_uses_100(self):
        """Equality predicates: denominator fixed at 100 (section 2.3)."""
        assert pscore_interval(
            Interval.point(0), Interval(-10, 10)
        ) == pytest.approx(20.0)

    def test_custom_denominator(self):
        assert pscore_interval(
            Interval(0, 50), Interval(0, 60), denominator=100
        ) == pytest.approx(10.0)

    def test_invalid_denominator(self):
        with pytest.raises(QueryModelError):
            pscore_interval(Interval(0, 1), Interval(0, 2), denominator=0)

    def test_no_refinement_is_zero(self):
        assert pscore_interval(Interval(0, 50), Interval(0, 50)) == 0.0


class TestLpNorm:
    def test_l1_is_sum(self):
        """The paper's default (Equation 3)."""
        assert LpNorm(1).qscore([10, 20, 5]) == 35.0

    def test_l2(self):
        assert LpNorm(2).qscore([3, 4]) == pytest.approx(5.0)

    def test_weights(self):
        """Section 7.1: LWp preference weighting."""
        assert LpNorm(1).qscore([10, 10], weights=[2.0, 1.0]) == 30.0

    def test_p_below_one_rejected(self):
        with pytest.raises(QueryModelError):
            LpNorm(0.5)

    def test_length_mismatch(self):
        with pytest.raises(QueryModelError):
            LpNorm(1).qscore([1, 2], weights=[1.0])

    def test_equality(self):
        assert LpNorm(2) == LpNorm(2)
        assert LpNorm(1) != LpNorm(2)


class TestLInfNorm:
    def test_max(self):
        assert LInfNorm().qscore([3, 9, 1]) == 9.0

    def test_empty(self):
        assert LInfNorm().qscore([]) == 0.0

    def test_weights(self):
        assert LInfNorm().qscore([3, 9], weights=[10.0, 1.0]) == 30.0


class TestNormProperties:
    @settings(max_examples=100, deadline=None)
    @given(pscores)
    def test_monotonicity(self, scores):
        """Increasing any PScore never decreases any norm's QScore."""
        for norm in (LpNorm(1), LpNorm(2), LInfNorm()):
            base = norm.qscore(scores)
            for index in range(len(scores)):
                bumped = list(scores)
                bumped[index] += 1.0
                assert norm.qscore(bumped) >= base - 1e-9

    @settings(max_examples=100, deadline=None)
    @given(pscores)
    def test_zero_iff_origin(self, scores):
        for norm in (LpNorm(1), LpNorm(3), LInfNorm()):
            assert norm.qscore([0.0] * len(scores)) == 0.0
            if any(score > 1e-6 for score in scores):
                assert norm.qscore(scores) > 0

    @settings(max_examples=100, deadline=None)
    @given(pscores)
    def test_norm_ordering(self, scores):
        """L-inf <= Lp <= L1 for unit weights."""
        l1 = LpNorm(1).qscore(scores)
        l2 = LpNorm(2).qscore(scores)
        linf = LInfNorm().qscore(scores)
        assert linf <= l2 + 1e-6
        assert l2 <= l1 + 1e-6
