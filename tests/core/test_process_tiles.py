"""Process tile tier: bit-identity, shm lifecycle, and degradation.

Everything here spawns (or deliberately kills) real worker processes,
so the whole module carries the ``procpool`` marker — ``make
test-fast`` skips it; tier-1 and CI run it. Pools are process-wide and
keyed by ``(BackendSpec.digest(), workers)``, so tests sharing a
dataset reuse warm workers instead of paying the spawn cost per test;
the module-level fixture shuts every pool down at the end.

Coverage:

* every backend family runs the process scheduler bit-identically to
  the serial explorer (``TestProcessMatchesSerial``);
* a hypothesis sweep over tile shapes x worker counts keeps the
  identity at odd seam geometries (``test_shapes_and_workers``);
* shared-memory blocks never leak — a subprocess run under
  warnings-as-errors must exit without any ``resource_tracker``
  complaint (``TestShmLifecycle``);
* killing the pool's workers mid-run degrades to in-process fetches,
  counts ``process_fallbacks``, and still answers bit-identically
  (``TestWorkerDeath``);
* a corpus subset replayed with ``tile_executor='process'`` stays
  oracle-optimal (``TestCorpusSubset``).
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.explore import Explorer
from repro.core.grid_explore import (
    _PROCESS_POOLS,
    _process_pool_for,
    TiledGridExplorer,
    shutdown_process_pools,
)
from repro.core.refined_space import RefinedSpace

from tests.core.test_sharded_explore import (
    BACKENDS,
    _database,
    _grid_coords,
    _make_layer,
    _query,
)

pytestmark = pytest.mark.procpool


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_process_pools()


def _process_explorer(
    backend_name, database, query, space, tile_shape, workers
):
    layer = _make_layer(backend_name, database)
    explorer = TiledGridExplorer(
        layer,
        layer.prepare(query, [100.0, 100.0]),
        space,
        query.constraint.spec.aggregate,
        tile_shape=tile_shape,
        tile_workers=workers,
        tile_executor="process",
    )
    return explorer, layer


# Shared dataset: every test over it hits the same warm pool.
_SEED, _ROWS = 77, 160


# ----------------------------------------------------------------------
# Bit-identity across backends and geometries
# ----------------------------------------------------------------------
class TestProcessMatchesSerial:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_all_backends(self, backend_name):
        database = _database(seed=_SEED, n=_ROWS)
        query = _query("SUM")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial_layer = _make_layer(backend_name, database)
        serial = Explorer(
            serial_layer,
            serial_layer.prepare(query, [100.0, 100.0]),
            space,
            query.constraint.spec.aggregate,
        )
        sharded, layer = _process_explorer(
            backend_name, database, query, space, (3, 3), workers=2
        )
        assert sharded.tile_executor == "process"
        try:
            sharded.prime_cells([space.max_coords])
            for coords in _grid_coords(space):
                assert sharded.block_state(coords) == serial.block_state(
                    coords
                ), coords
            assert layer.stats.process_tiles > 0
            assert layer.stats.process_fallbacks == 0
            assert layer.stats.shm_bytes > 0
        finally:
            sharded.close()

    @settings(max_examples=6, deadline=None)
    @given(
        width=st.integers(min_value=1, max_value=4),
        height=st.integers(min_value=1, max_value=5),
        workers=st.integers(min_value=2, max_value=4),
    )
    def test_shapes_and_workers(self, width, height, workers):
        database = _database(seed=_SEED, n=_ROWS)
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial, _ = _process_explorer(
            "memory", database, query, space, (3, 3), workers=1
        )
        serial.prime_cells([space.max_coords])
        sharded, layer = _process_explorer(
            "memory", database, query, space, (width, height), workers
        )
        try:
            sharded.prime_cells([space.max_coords])
            for coords in _grid_coords(space):
                assert sharded.block_state(coords) == serial.block_state(
                    coords
                ), (coords, width, height, workers)
            assert layer.stats.process_fallbacks == 0
        finally:
            sharded.close()
            serial.close()


# ----------------------------------------------------------------------
# Shared-memory lifecycle: no leaked blocks, ever
# ----------------------------------------------------------------------
class TestShmLifecycle:
    def test_no_resource_tracker_leaks(self, tmp_path):
        """A full process-tier run in a fresh interpreter must exit
        clean: any leaked shared_memory block makes the resource
        tracker print a ``leaked ... objects`` warning at shutdown,
        which this test treats as an error."""
        script = tmp_path / "leak_probe.py"
        # The spawn start method re-imports __main__ in every worker,
        # so the probe body must sit behind a __main__ guard.
        script.write_text(textwrap.dedent(
            """
            def main():
                from repro.core.grid_explore import (
                    TiledGridExplorer,
                    shutdown_process_pools,
                )
                from repro.core.refined_space import RefinedSpace
                from tests.core.test_sharded_explore import (
                    _database,
                    _make_layer,
                    _query,
                )

                database = _database(seed=77, n=160)
                query = _query("SUM")
                space = RefinedSpace(query, 20.0, [70.0, 70.0])
                layer = _make_layer("memory", database)
                explorer = TiledGridExplorer(
                    layer,
                    layer.prepare(query, [100.0, 100.0]),
                    space,
                    query.constraint.spec.aggregate,
                    tile_shape=(3, 3),
                    tile_workers=2,
                    tile_executor="process",
                )
                assert explorer.tile_executor == "process"
                explorer.prime_cells([space.max_coords])
                explorer.close()
                assert layer.stats.process_tiles > 0
                shutdown_process_pools()
                print("PROBE_OK")


            if __name__ == "__main__":
                main()
            """
        ))
        root = os.path.abspath(
            os.path.join(os.path.dirname(repro.__file__), os.pardir)
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [root, os.path.dirname(root), env.get("PYTHONPATH", "")]
        )
        proc = subprocess.run(
            [sys.executable, "-W", "error", str(script)],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
            cwd=os.path.dirname(root),
        )
        assert proc.returncode == 0, proc.stderr
        assert "PROBE_OK" in proc.stdout
        assert "leaked" not in proc.stderr, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr


# ----------------------------------------------------------------------
# Pool crash: degrade, count, stay correct
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_fallback_is_counted_and_identical(self):
        database = _database(seed=78, n=140)
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial, _ = _process_explorer(
            "memory", database, query, space, (3, 3), workers=1
        )
        serial.prime_cells([space.max_coords])
        sharded, layer = _process_explorer(
            "memory", database, query, space, (3, 3), workers=2
        )
        assert sharded.tile_executor == "process"
        # Warm the pool (pools otherwise spawn lazily on the first
        # multi-tile batch), then kill its workers out from under the
        # scheduler: the next batch must degrade to in-process fetches.
        pool = _process_pool_for(
            sharded._scheduler.spec, 2, sharded._scheduler.explorer.layer
        )
        assert pool is not None, "worker pool failed to spawn"
        assert pool is _PROCESS_POOLS[sharded._scheduler._key]
        workers = list(pool.executor._processes.values())
        for worker in workers:
            worker.kill()
        for worker in workers:
            worker.join()
        try:
            sharded.prime_cells([space.max_coords])
            for coords in _grid_coords(space):
                assert sharded.block_state(coords) == serial.block_state(
                    coords
                ), coords
            assert layer.stats.process_fallbacks > 0
        finally:
            sharded.close()
            serial.close()
        # The broken pool must have been retired from the registry.
        assert sharded._scheduler._key not in _PROCESS_POOLS


# ----------------------------------------------------------------------
# Registry under concurrent spawn: one pool, refcounted retirement
# ----------------------------------------------------------------------
class TestConcurrentSpawn:
    def test_racing_requests_share_one_pool(self):
        """N threads hitting the registry for the same (spec, workers)
        must spawn exactly one pool — the double-checked per-key spawn
        lock — and refcounted release must leave it reusable until
        retirement."""
        import threading

        from repro.core.grid_explore import _release_pool, _retire_pool

        database = _database(seed=81, n=140)
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        sharded, _ = _process_explorer(
            "memory", database, query, space, (3, 3), workers=2
        )
        scheduler = sharded._scheduler
        threads_n = 6
        barrier = threading.Barrier(threads_n)
        pools: list = [None] * threads_n

        def spawn(index: int) -> None:
            barrier.wait()
            pools[index] = _process_pool_for(
                scheduler.spec, 2, scheduler.explorer.layer
            )

        threads = [
            threading.Thread(target=spawn, args=(index,))
            for index in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert all(pool is not None for pool in pools)
            assert len({id(pool) for pool in pools}) == 1, (
                "racing spawns created more than one pool"
            )
            pool = pools[0]
            assert pool.refs == threads_n
            assert _PROCESS_POOLS[scheduler._key] is pool
            # Releasing every ref keeps an unretired pool registered
            # (warm reuse is the registry's whole point).
            for _ in range(threads_n):
                _release_pool(pool)
            assert pool.refs == 0
            assert _PROCESS_POOLS[scheduler._key] is pool
            # Retirement drops it; the executor is reaped since no
            # refs remain.
            _retire_pool(pool)
            assert scheduler._key not in _PROCESS_POOLS
        finally:
            sharded.close()


# ----------------------------------------------------------------------
# Corpus subset stays oracle-optimal on the process tier
# ----------------------------------------------------------------------
class TestCorpusSubset:
    def test_first_triples_pass_with_process_executor(self):
        from dataclasses import replace

        from repro.core.acquire import Acquire
        from repro.corpus.gate import _check_ranking
        from repro.corpus.generator import realize
        from repro.corpus.manifest import (
            DEFAULT_MANIFEST_PATH,
            load_manifest,
        )
        from repro.engine.memory_backend import MemoryBackend

        manifest = load_manifest(DEFAULT_MANIFEST_PATH)
        assert manifest.triples, "committed corpus manifest is empty"
        for labeled in manifest.triples[:2]:
            database, query, config = realize(labeled.spec)
            layer = MemoryBackend(database)
            result = Acquire(layer).run(
                query,
                replace(
                    config,
                    explore_mode="tiled",
                    tile_workers=2,
                    tile_executor="process",
                ),
            )
            problems: list[str] = []
            _check_ranking(
                "process", result, labeled, labeled.spec.top_k, problems
            )
            assert not problems, problems
