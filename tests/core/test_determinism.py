"""End-to-end determinism of batched / parallel execution.

The batched-execution contract (``docs/PARALLELISM.md``): turning on
``batched`` or raising ``parallelism`` changes *how many round trips*
the evaluation layer makes, never *what* ACQUIRE answers. Same data and
configuration must yield identical answer sets, QScores, aggregate
values, and ``cells_executed`` for every execution mode — the only
counters allowed to move are the batching ones.
"""

import numpy as np
import pytest

from repro.core.acquire import Acquire, AcquireConfig
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sqlite_backend import SQLiteBackend
from repro.exceptions import QueryModelError
from tests.conftest import count_query


def _db(seed: int = 9, n: int = 3000) -> Database:
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table(
        "data",
        {"x": rng.uniform(0, 100, n), "y": rng.uniform(0, 100, n)},
    )
    return database


def _answer_key(result):
    return [
        (a.pscores, a.qscore, a.aggregate_value, a.error)
        for a in result.answers
    ]


def _run(database, query, backend_factory, **config_kwargs):
    layer = backend_factory(database)
    result = Acquire(layer).run(query, AcquireConfig(**config_kwargs))
    return result, layer.stats


class TestDeterminism:
    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_parallelism_levels_identical(self, parallelism):
        """Same seed, parallelism in {1, 4} -> identical AcquireResult
        answer sets, QScores, and cells_executed."""
        database = _db(seed=42)
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=900)
        serial, _ = _run(database, query, MemoryBackend)
        other, _ = _run(
            database, query, MemoryBackend, parallelism=parallelism
        )
        assert _answer_key(other) == _answer_key(serial)
        assert other.stats.cells_executed == serial.stats.cells_executed
        assert (
            other.stats.grid_queries_examined
            == serial.stats.grid_queries_examined
        )
        assert other.original_value == serial.original_value

    @pytest.mark.parametrize(
        "backend_factory", [MemoryBackend, SQLiteBackend]
    )
    def test_batched_identical_across_backends(self, backend_factory):
        database = _db(seed=7, n=2000)
        query = count_query("data", {"x": 25.0, "y": 25.0}, target=700)
        serial, _ = _run(database, query, backend_factory)
        batched, batched_exec = _run(
            database, query, backend_factory, batched=True
        )
        assert _answer_key(batched) == _answer_key(serial)
        assert batched.stats.cells_executed == serial.stats.cells_executed
        assert batched_exec.batches >= 1

    def test_thread_pool_fallback_identical(self):
        """A backend without a native batch goes through the
        ThreadPoolExecutor; answers must still match serial exactly."""
        from tests.engine.test_differential import _NoBatchWrapper

        database = _db(seed=13, n=1500)
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=450)
        serial, _ = _run(database, query, MemoryBackend)
        wrapped, stats = _run(
            database,
            query,
            lambda db: _NoBatchWrapper(MemoryBackend(db)),
            parallelism=4,
        )
        assert _answer_key(wrapped) == _answer_key(serial)
        assert wrapped.stats.cells_executed == serial.stats.cells_executed
        assert stats.parallel_cells > 0

    def test_budget_truncation_identical(self):
        """When max_grid_queries cuts a layer short, the batched path
        must prime only what serial would have examined."""
        database = _db(seed=21, n=1200)
        query = count_query("data", {"x": 20.0, "y": 20.0}, target=1100)
        serial, _ = _run(
            database, query, MemoryBackend, max_grid_queries=37
        )
        batched, _ = _run(
            database, query, MemoryBackend, max_grid_queries=37, batched=True
        )
        assert _answer_key(batched) == _answer_key(serial)
        assert batched.stats.cells_executed == serial.stats.cells_executed
        assert (
            batched.stats.grid_queries_examined
            == serial.stats.grid_queries_examined
        )

    def test_parallelism_validated(self):
        with pytest.raises(QueryModelError):
            AcquireConfig(parallelism=0)


class TestRoundTripReduction:
    """Acceptance criterion: the fig9-style dimensionality workload on
    the memory backend — batched + parallelism=4 — yields identical
    answers with at least 2x fewer backend round trips; on sqlite,
    whole layers collapse into single GROUP BY statements, visible in
    ``ExecutionStats.batches``."""

    def test_fig9_memory_parallel_batched(self):
        from repro.harness.experiments import fig9_dimensionality

        kwargs = dict(
            scale_rows=1200,
            dims=(1, 2, 3),
            methods=("ACQUIRE",),
            backend="memory",
        )
        serial = fig9_dimensionality(**kwargs)
        batched = fig9_dimensionality(**kwargs, batched=True, parallelism=4)
        for row_s, row_b in zip(serial.rows, batched.rows):
            assert row_b.qscore == row_s.qscore, row_s.x_value
            assert row_b.aggregate_value == row_s.aggregate_value
            assert row_b.error == row_s.error
            assert row_b.satisfied == row_s.satisfied
        queries_serial = sum(row.queries for row in serial.rows)
        queries_batched = sum(row.queries for row in batched.rows)
        assert queries_batched * 2 <= queries_serial
        assert sum(row.batches for row in batched.rows) >= 1
        assert all(row.batches == 0 for row in serial.rows)

    def test_sqlite_one_group_by_per_layer(self):
        database = _db(seed=5, n=2500)
        query = count_query("data", {"x": 25.0, "y": 25.0}, target=800)
        serial, serial_exec = _run(database, query, SQLiteBackend)
        batched, batched_exec = _run(
            database, query, SQLiteBackend, batched=True
        )
        assert _answer_key(batched) == _answer_key(serial)
        # Every cell after the origin probe went through a batch...
        assert (
            batched_exec.batched_cells >= batched_exec.cell_queries - 1
        )
        # ...and batches (one GROUP BY statement each) number far fewer
        # than the cells they answered.
        assert batched_exec.batches * 2 <= batched_exec.batched_cells
        assert batched_exec.queries_executed * 2 <= (
            serial_exec.queries_executed
        )
