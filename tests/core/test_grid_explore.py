"""Differential suite for the materialized Explore path.

Proves the three-way contract of ``docs/EXPLORE_MODES.md``:

* ``GridExplorer`` block states are **bit-identical** to the serial
  incremental :class:`~repro.core.explore.Explorer` on the exact
  backends (memory in every mode, sqlite, and the base-class
  ``execute_grid`` fallback), and match the estimation backends'
  serial arithmetic exactly as well;
* turning materialization on is observable only in the round-trip
  counters (``grid_materializations`` / ``grid_cells`` /
  ``queries_executed``), never in an answer;
* the ``auto`` plan chooser never costs more round trips than the
  better fixed mode, stays incremental for sparse / early-terminating
  searches, and enforces ``materialize_cell_cap``.

Aggregate values are multiples of 0.25 (exact binary fractions), as in
``tests/engine/test_differential.py``, so the bit-identical assertions
cannot be defeated by legitimate reassociation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.aggregates import (
    AggregateSpec,
    UserDefinedAggregate,
    get_aggregate,
)
from repro.core.expand import make_traversal
from repro.core.explore import Explorer
from repro.core.grid_explore import GridExplorer, prefix_combine
from repro.core.interval import Interval
from repro.core.plan import SMALL_GRID_CELLS, choose_explore_mode
from repro.core.predicate import Direction, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.core.refined_space import RefinedSpace
from repro.engine.backends import EvaluationLayer
from repro.engine.catalog import Database
from repro.engine.expression import col
from repro.engine.histogram_backend import HistogramBackend
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sampling import SamplingBackend
from repro.engine.sqlite_backend import SQLiteBackend
from repro.exceptions import QueryModelError

ALL_AGGREGATES = ("COUNT", "SUM", "MIN", "MAX", "AVG")
HISTOGRAM_AGGREGATES = ("COUNT", "SUM", "AVG")


def _database(seed: int, n: int) -> Database:
    """Random table; dimension and value columns are exact binary
    fractions (multiples of 0.25)."""
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table(
        "t",
        {
            "x": np.floor(rng.uniform(0, 400, n)) / 4.0,
            "y": np.floor(rng.uniform(0, 400, n)) / 4.0,
            "z": np.floor(rng.uniform(0, 400, n)) / 4.0,
            "v": np.floor(rng.uniform(-200, 200, n)) / 4.0,
        },
    )
    return database


def _query(
    aggregate,
    bounds=(30.0, 30.0),
    columns=("x", "y"),
    target=100.0,
    op=ConstraintOp.EQ,
) -> Query:
    predicates = [
        SelectPredicate(
            name=f"p{i}",
            expr=col("t." + column),
            interval=Interval(0.0, bound),
            direction=Direction.UPPER,
            denominator=100.0,
        )
        for i, (column, bound) in enumerate(zip(columns, bounds))
    ]
    agg = (
        get_aggregate(aggregate) if isinstance(aggregate, str) else aggregate
    )
    attr = col("t.v") if agg.needs_attribute else None
    constraint = AggregateConstraint(AggregateSpec(agg, attr), op, target)
    return Query.build("q", ("t",), predicates, constraint)


def _grid_coords(space: RefinedSpace) -> list[tuple[int, ...]]:
    return list(make_traversal(space, "lp"))


class _NoGridWrapper(EvaluationLayer):
    """Delegating layer hiding the inner backend's native bulk paths —
    its ``execute_grid`` / ``execute_cells`` run the base-class
    assembly, the path a third-party ``EvaluationLayer`` subclass
    without a bulk implementation takes."""

    def __init__(self, inner: EvaluationLayer) -> None:
        super().__init__()
        self._inner = inner

    def prepare(self, query, dim_caps=None):
        return self._inner.prepare(query, dim_caps)

    def useful_max_scores(self, prepared):
        return self._inner.useful_max_scores(prepared)

    def execute_cell(self, prepared, space, coords):
        self._count_query("cell")
        return self._inner.execute_cell(prepared, space, coords)

    def execute_box(self, prepared, scores):
        self._count_query("box")
        return self._inner.execute_box(prepared, scores)


def _make_layer(backend_name: str, database: Database) -> EvaluationLayer:
    if backend_name == "memory":
        return MemoryBackend(database)
    if backend_name == "memory-vectorized":
        return MemoryBackend(database, vectorized_grid=True)
    if backend_name == "sqlite":
        return SQLiteBackend(database)
    if backend_name == "fallback":
        return _NoGridWrapper(MemoryBackend(database))
    raise AssertionError(backend_name)


def _pair(backend_name, query, dim_caps, space, aggregate, database):
    """A serial Explorer and a GridExplorer on independent layers."""
    serial_layer = _make_layer(backend_name, database)
    grid_layer = _make_layer(backend_name, database)
    serial = Explorer(
        serial_layer, serial_layer.prepare(query, dim_caps), space, aggregate
    )
    grid = GridExplorer(
        grid_layer, grid_layer.prepare(query, dim_caps), space, aggregate
    )
    return serial, grid, grid_layer


# ----------------------------------------------------------------------
# GridExplorer == serial Explorer, bit-identical
# ----------------------------------------------------------------------
class TestGridMatchesSerial:
    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    @pytest.mark.parametrize(
        "backend_name", ["memory", "memory-vectorized", "sqlite", "fallback"]
    )
    def test_exact_backends(self, backend_name, aggregate):
        database = _database(seed=21, n=180)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial, grid, grid_layer = _pair(
            backend_name,
            query,
            [100.0, 100.0],
            space,
            query.constraint.spec.aggregate,
            database,
        )
        for coords in _grid_coords(space):
            assert grid.block_state(coords) == serial.block_state(coords), (
                coords
            )
            assert grid.compute_aggregate(coords) == serial.compute_aggregate(
                coords
            )
        assert grid_layer.stats.grid_materializations == 1
        assert grid_layer.stats.grid_cells == space.grid_size
        assert grid.cells_executed == space.grid_size
        assert grid.cells_skipped == 0

    @pytest.mark.parametrize(
        "columns, bounds, max_scores",
        [
            (("x",), (30.0,), [70.0]),
            (("x", "y", "z"), (40.0, 40.0, 40.0), [40.0, 40.0, 40.0]),
        ],
    )
    @pytest.mark.parametrize("aggregate", ("COUNT", "SUM"))
    def test_other_dimensionalities(self, aggregate, columns, bounds,
                                    max_scores):
        database = _database(seed=22, n=150)
        query = _query(aggregate, bounds, columns)
        space = RefinedSpace(query, 15.0 * len(columns), max_scores)
        serial, grid, _ = _pair(
            "memory",
            query,
            [100.0] * len(columns),
            space,
            query.constraint.spec.aggregate,
            database,
        )
        for coords in _grid_coords(space):
            assert grid.block_state(coords) == serial.block_state(coords)

    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    def test_empty_table(self, aggregate):
        database = _database(seed=23, n=0)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial, grid, _ = _pair(
            "memory",
            query,
            [100.0, 100.0],
            space,
            query.constraint.spec.aggregate,
            database,
        )
        for coords in _grid_coords(space):
            assert grid.block_state(coords) == serial.block_state(coords)

    @pytest.mark.parametrize("aggregate", HISTOGRAM_AGGREGATES)
    def test_histogram_backend(self, aggregate):
        database = _database(seed=24, n=180)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial_layer = HistogramBackend(database)
        grid_layer = HistogramBackend(database)
        agg = query.constraint.spec.aggregate
        serial = Explorer(
            serial_layer, serial_layer.prepare(query, [100.0, 100.0]),
            space, agg,
        )
        grid = GridExplorer(
            grid_layer, grid_layer.prepare(query, [100.0, 100.0]),
            space, agg,
        )
        for coords in _grid_coords(space):
            assert grid.block_state(coords) == serial.block_state(coords)

    @pytest.mark.parametrize("aggregate", ("COUNT", "SUM"))
    def test_sampling_backend(self, aggregate):
        database = _database(seed=25, n=300)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial_layer = SamplingBackend(database, fraction=0.5, seed=3)
        grid_layer = SamplingBackend(database, fraction=0.5, seed=3)
        agg = query.constraint.spec.aggregate
        serial = Explorer(
            serial_layer, serial_layer.prepare(query, [100.0, 100.0]),
            space, agg,
        )
        grid = GridExplorer(
            grid_layer, grid_layer.prepare(query, [100.0, 100.0]),
            space, agg,
        )
        for coords in _grid_coords(space):
            assert grid.block_state(coords) == serial.block_state(coords)

    def test_user_defined_aggregate_generic_fold(self):
        """A user aggregate takes the generic Python prefix fold and
        still matches the serial Explorer bit for bit."""
        total = UserDefinedAggregate(
            name="TOTAL",
            identity=(0.0,),
            combine=lambda left, right: (left[0] + right[0],),
            lift=lambda values: (float(np.sum(values)),),
        )
        database = _database(seed=26, n=160)
        query = _query(total)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial, grid, _ = _pair(
            "memory", query, [100.0, 100.0], space, total, database
        )
        for coords in _grid_coords(space):
            assert grid.block_state(coords) == serial.block_state(coords)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n=st.integers(min_value=0, max_value=120),
        aggregate=st.sampled_from(ALL_AGGREGATES),
        backend_name=st.sampled_from(("memory", "sqlite")),
        bound_x=st.floats(min_value=5.0, max_value=60.0),
        bound_y=st.floats(min_value=5.0, max_value=60.0),
        gamma=st.floats(min_value=16.0, max_value=40.0),
    )
    def test_random_grids(
        self, seed, n, aggregate, backend_name, bound_x, bound_y, gamma
    ):
        """Property: over random data, grids and aggregates, every
        block state of the materialized engine equals the serial
        Explorer's — including empty cells and empty tables."""
        database = _database(seed=seed, n=n)
        query = _query(aggregate, (bound_x, bound_y))
        space = RefinedSpace(query, gamma, [80.0, 80.0])
        serial, grid, _ = _pair(
            backend_name,
            query,
            [150.0, 150.0],
            space,
            query.constraint.spec.aggregate,
            database,
        )
        for coords in _grid_coords(space)[:40]:
            assert grid.block_state(coords) == serial.block_state(coords), (
                coords
            )


# ----------------------------------------------------------------------
# Counters: one round trip for the whole grid
# ----------------------------------------------------------------------
class TestGridCounters:
    def test_single_round_trip_on_native_backends(self):
        database = _database(seed=27, n=150)
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        for backend_name in ("memory", "sqlite"):
            layer = _make_layer(backend_name, database)
            grid = GridExplorer(
                layer,
                layer.prepare(query, [100.0, 100.0]),
                space,
                query.constraint.spec.aggregate,
            )
            before = layer.stats.snapshot()
            for coords in _grid_coords(space):
                grid.compute_aggregate(coords)
            delta = layer.stats.since(before)
            assert delta.queries_executed == 1, backend_name
            assert delta.grid_materializations == 1
            assert delta.grid_cells == space.grid_size

    def test_materialization_is_lazy_and_single(self):
        database = _database(seed=28, n=100)
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        layer = MemoryBackend(database)
        grid = GridExplorer(
            layer,
            layer.prepare(query, [100.0, 100.0]),
            space,
            query.constraint.spec.aggregate,
        )
        assert layer.stats.grid_materializations == 0
        assert grid.cells_executed == 0
        assert grid.prime_cells([space.origin]) == 0
        assert layer.stats.grid_materializations == 0  # priming is a no-op
        grid.compute_aggregate(space.origin)
        grid.compute_aggregate(space.max_coords)
        assert layer.stats.grid_materializations == 1


# ----------------------------------------------------------------------
# prefix_combine unit behavior
# ----------------------------------------------------------------------
class TestPrefixCombine:
    def test_count_cumulative_sum_all_axes(self):
        cells = np.array(
            [[[1.0], [2.0]], [[3.0], [4.0]]]
        )  # 2x2 grid, arity-1 states
        blocks = prefix_combine(cells.copy(), get_aggregate("COUNT"))
        assert blocks[0, 0, 0] == 1.0
        assert blocks[1, 0, 0] == 4.0
        assert blocks[0, 1, 0] == 3.0
        assert blocks[1, 1, 0] == 10.0

    def test_max_running_maximum(self):
        cells = np.array([[[5.0], [1.0]], [[2.0], [9.0]]])
        blocks = prefix_combine(cells.copy(), get_aggregate("MAX"))
        assert blocks[1, 1, 0] == 9.0
        assert blocks[1, 0, 0] == 5.0
        assert blocks[0, 1, 0] == 5.0

    def test_generic_fold_matches_vectorized(self):
        summish = UserDefinedAggregate(
            name="TOTAL",
            identity=(0.0,),
            combine=lambda left, right: (left[0] + right[0],),
            lift=lambda values: (float(np.sum(values)),),
        )
        rng = np.random.default_rng(5)
        cells = np.floor(rng.uniform(0, 40, (3, 4, 2, 1))) / 4.0
        generic = prefix_combine(cells.copy(), summish)
        vectorized = prefix_combine(cells.copy(), get_aggregate("SUM"))
        assert generic.dtype == object
        for index in np.ndindex(generic.shape):
            assert generic[index] == (vectorized[index][0],)


# ----------------------------------------------------------------------
# Plan chooser (explore_mode='auto')
# ----------------------------------------------------------------------
def _plan(query, config, max_scores=(70.0, 70.0), n=400, seed=31):
    database = _database(seed=seed, n=n)
    layer = MemoryBackend(database)
    space = RefinedSpace(query, 20.0, list(max_scores))
    return choose_explore_mode(layer, query, space, config)


class TestPlanChooser:
    def test_dense_search_materializes(self):
        plan = _plan(_query("COUNT", target=380.0), AcquireConfig(
            explore_mode="auto"))
        assert plan.mode == "materialized"
        assert plan.reason == "cost-model"
        assert plan.estimated_visited > 1

    def test_eq_overshoot_stays_incremental(self):
        """An equality target below the predicted origin value heads to
        the contraction path; auto must not materialize for it."""
        plan = _plan(_query("COUNT", target=5.0), AcquireConfig(
            explore_mode="auto"))
        assert plan.mode == "incremental"
        assert plan.estimated_visited == 1

    def test_early_terminating_search_stays_incremental(self):
        """A target predicted to be reached after one layer on a big
        grid: visiting a handful of cells beats a full pass."""
        query = _query("COUNT", target=45.0)
        plan = _plan(query, AcquireConfig(explore_mode="auto"),
                     max_scores=(340.0, 340.0))
        assert plan.mode == "incremental"
        assert plan.reason == "cost-model"
        assert 0 < plan.estimated_visited < plan.grid_cells

    def test_grid_over_cap_falls_back(self):
        plan = _plan(_query("COUNT", target=380.0), AcquireConfig(
            explore_mode="auto", materialize_cell_cap=4))
        assert plan.mode == "incremental"
        assert plan.reason == "grid-over-cap"

    def test_forced_materialized_over_cap_raises(self):
        with pytest.raises(QueryModelError):
            _plan(_query("COUNT"), AcquireConfig(
                explore_mode="materialized", materialize_cell_cap=4))

    def test_statless_layer_uses_small_grid_rule(self):
        database = _database(seed=32, n=100)
        layer = _NoGridWrapper(MemoryBackend(database))  # no .database
        query = _query("COUNT", target=380.0)
        config = AcquireConfig(explore_mode="auto")
        small = RefinedSpace(query, 20.0, [70.0, 70.0])
        plan = choose_explore_mode(layer, query, small, config)
        assert small.grid_size <= SMALL_GRID_CELLS
        assert (plan.mode, plan.reason) == ("materialized", "small-grid")
        big = RefinedSpace(query, 20.0, [3000.0, 3000.0])
        plan = choose_explore_mode(layer, query, big, config)
        assert big.grid_size > SMALL_GRID_CELLS
        assert (plan.mode, plan.reason) == ("incremental", "no-statistics")

    def test_config_validation(self):
        with pytest.raises(QueryModelError):
            AcquireConfig(explore_mode="bogus")
        with pytest.raises(QueryModelError):
            AcquireConfig(materialize_cell_cap=0)


# ----------------------------------------------------------------------
# End to end through Acquire
# ----------------------------------------------------------------------
def _run(database, query, **overrides):
    layer = MemoryBackend(database)
    config = AcquireConfig(gamma=10.0, delta=0.05, **overrides)
    return Acquire(layer).run(query, config)


def _answer_key(result):
    return [
        (a.coords, a.qscore, a.aggregate_value, a.error)
        for a in result.answers
    ]


class TestAcquireModes:
    @pytest.mark.parametrize("aggregate, target", [
        ("COUNT", 150.0), ("SUM", 400.0),
    ])
    def test_modes_agree_and_auto_is_no_worse(self, aggregate, target):
        database = _database(seed=33, n=200)
        query = _query(aggregate, target=target)
        runs = {
            mode: _run(database, query, explore_mode=mode)
            for mode in ("incremental", "materialized", "auto")
        }
        baseline = _answer_key(runs["incremental"])
        assert runs["incremental"].stats.explore_mode == "incremental"
        assert runs["materialized"].stats.explore_mode == "materialized"
        assert runs["auto"].stats.explore_mode in (
            "incremental", "materialized"
        )
        for mode in ("materialized", "auto"):
            assert _answer_key(runs[mode]) == baseline, mode
            assert runs[mode].satisfied == runs["incremental"].satisfied
        assert runs["materialized"].stats.execution.grid_materializations >= 1
        assert runs["incremental"].stats.execution.grid_materializations == 0
        fixed_best = min(
            runs["incremental"].stats.execution.queries_executed,
            runs["materialized"].stats.execution.queries_executed,
        )
        assert runs["auto"].stats.execution.queries_executed <= fixed_best

    def test_auto_over_cap_runs_incremental(self):
        database = _database(seed=34, n=150)
        query = _query("COUNT", target=120.0)
        capped = _run(
            database, query, explore_mode="auto", materialize_cell_cap=2
        )
        plain = _run(database, query, explore_mode="incremental")
        assert capped.stats.explore_mode == "incremental"
        assert _answer_key(capped) == _answer_key(plain)
        assert (
            capped.stats.execution.queries_executed
            == plain.stats.execution.queries_executed
        )

    def test_forced_materialized_over_cap_raises_in_run(self):
        database = _database(seed=34, n=150)
        query = _query("COUNT", target=120.0)
        with pytest.raises(QueryModelError):
            _run(
                database,
                query,
                explore_mode="materialized",
                materialize_cell_cap=2,
            )
