"""Differential suite for the materialized and tiled Explore paths.

Proves the contract of ``docs/EXPLORE_MODES.md``:

* ``GridExplorer`` block states are **bit-identical** to the serial
  incremental :class:`~repro.core.explore.Explorer` on the exact
  backends (memory in every mode, sqlite, and the base-class
  ``execute_grid`` fallback), and match the estimation backends'
  serial arithmetic exactly as well;
* ``TiledGridExplorer`` is bit-identical to both, for every tile shape
  — including shapes that split traversal layers mid-seam — and a
  cache-hit replay reproduces every block state bit for bit;
* ``execute_grid_tile`` returns exactly the corresponding slice of
  ``execute_grid`` on every backend;
* turning materialization on is observable only in the round-trip
  counters (``grid_materializations`` / ``grid_tiles`` /
  ``grid_cells`` / ``queries_executed`` / cache counters), never in an
  answer;
* the ``auto`` plan chooser never costs more round trips than the
  better fixed mode, stays incremental for sparse / early-terminating
  searches, and routes over-cap / over-budget grids to the tiled
  engine.

Aggregate values are multiples of 0.25 (exact binary fractions), as in
``tests/engine/test_differential.py``, so the bit-identical assertions
cannot be defeated by legitimate reassociation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.aggregates import (
    AggregateSpec,
    UserDefinedAggregate,
    get_aggregate,
)
from repro.core.expand import make_traversal
from repro.core.explore import Explorer
from repro.core.grid_cache import (
    GridTensorCache,
    layer_cache_token,
    query_fingerprint,
)
from repro.core.grid_explore import (
    GridExplorer,
    TiledGridExplorer,
    prefix_combine,
    tile_prefix_combine,
    tile_shape_for,
)
from repro.core.interval import Interval
from repro.core.plan import (
    SMALL_GRID_CELLS,
    PlanCalibration,
    choose_explore_mode,
)
from repro.core.predicate import Direction, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.core.refined_space import RefinedSpace
from repro.engine.backends import EvaluationLayer
from repro.engine.catalog import Database
from repro.engine.expression import col
from repro.engine.histogram_backend import HistogramBackend
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sampling import SamplingBackend
from repro.engine.sqlite_backend import SQLiteBackend
from repro.exceptions import EngineError, QueryModelError, SearchError

ALL_AGGREGATES = ("COUNT", "SUM", "MIN", "MAX", "AVG")
HISTOGRAM_AGGREGATES = ("COUNT", "SUM", "AVG")


def _database(seed: int, n: int) -> Database:
    """Random table; dimension and value columns are exact binary
    fractions (multiples of 0.25)."""
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table(
        "t",
        {
            "x": np.floor(rng.uniform(0, 400, n)) / 4.0,
            "y": np.floor(rng.uniform(0, 400, n)) / 4.0,
            "z": np.floor(rng.uniform(0, 400, n)) / 4.0,
            "v": np.floor(rng.uniform(-200, 200, n)) / 4.0,
        },
    )
    return database


def _query(
    aggregate,
    bounds=(30.0, 30.0),
    columns=("x", "y"),
    target=100.0,
    op=ConstraintOp.EQ,
) -> Query:
    predicates = [
        SelectPredicate(
            name=f"p{i}",
            expr=col("t." + column),
            interval=Interval(0.0, bound),
            direction=Direction.UPPER,
            denominator=100.0,
        )
        for i, (column, bound) in enumerate(zip(columns, bounds))
    ]
    agg = (
        get_aggregate(aggregate) if isinstance(aggregate, str) else aggregate
    )
    attr = col("t.v") if agg.needs_attribute else None
    constraint = AggregateConstraint(AggregateSpec(agg, attr), op, target)
    return Query.build("q", ("t",), predicates, constraint)


def _grid_coords(space: RefinedSpace) -> list[tuple[int, ...]]:
    return list(make_traversal(space, "lp"))


class _NoGridWrapper(EvaluationLayer):
    """Delegating layer hiding the inner backend's native bulk paths —
    its ``execute_grid`` / ``execute_cells`` run the base-class
    assembly, the path a third-party ``EvaluationLayer`` subclass
    without a bulk implementation takes."""

    def __init__(self, inner: EvaluationLayer) -> None:
        super().__init__()
        self._inner = inner

    def prepare(self, query, dim_caps=None):
        return self._inner.prepare(query, dim_caps)

    def useful_max_scores(self, prepared):
        return self._inner.useful_max_scores(prepared)

    def execute_cell(self, prepared, space, coords):
        self._count_query("cell")
        return self._inner.execute_cell(prepared, space, coords)

    def execute_box(self, prepared, scores):
        self._count_query("box")
        return self._inner.execute_box(prepared, scores)


def _make_layer(backend_name: str, database: Database) -> EvaluationLayer:
    if backend_name == "memory":
        return MemoryBackend(database)
    if backend_name == "memory-vectorized":
        return MemoryBackend(database, vectorized_grid=True)
    if backend_name == "sqlite":
        return SQLiteBackend(database)
    if backend_name == "fallback":
        return _NoGridWrapper(MemoryBackend(database))
    raise AssertionError(backend_name)


def _pair(backend_name, query, dim_caps, space, aggregate, database):
    """A serial Explorer and a GridExplorer on independent layers."""
    serial_layer = _make_layer(backend_name, database)
    grid_layer = _make_layer(backend_name, database)
    serial = Explorer(
        serial_layer, serial_layer.prepare(query, dim_caps), space, aggregate
    )
    grid = GridExplorer(
        grid_layer, grid_layer.prepare(query, dim_caps), space, aggregate
    )
    return serial, grid, grid_layer


def _tiled_pair(
    backend_name,
    query,
    dim_caps,
    space,
    aggregate,
    database,
    tile_shape=None,
    cache=None,
):
    """A serial Explorer and a TiledGridExplorer on independent layers."""
    serial_layer = _make_layer(backend_name, database)
    tiled_layer = _make_layer(backend_name, database)
    serial = Explorer(
        serial_layer, serial_layer.prepare(query, dim_caps), space, aggregate
    )
    tiled = TiledGridExplorer(
        tiled_layer,
        tiled_layer.prepare(query, dim_caps),
        space,
        aggregate,
        tile_shape=tile_shape,
        cache=cache,
    )
    return serial, tiled, tiled_layer


# ----------------------------------------------------------------------
# GridExplorer == serial Explorer, bit-identical
# ----------------------------------------------------------------------
class TestGridMatchesSerial:
    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    @pytest.mark.parametrize(
        "backend_name", ["memory", "memory-vectorized", "sqlite", "fallback"]
    )
    def test_exact_backends(self, backend_name, aggregate):
        database = _database(seed=21, n=180)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial, grid, grid_layer = _pair(
            backend_name,
            query,
            [100.0, 100.0],
            space,
            query.constraint.spec.aggregate,
            database,
        )
        for coords in _grid_coords(space):
            assert grid.block_state(coords) == serial.block_state(coords), (
                coords
            )
            assert grid.compute_aggregate(coords) == serial.compute_aggregate(
                coords
            )
        assert grid_layer.stats.grid_materializations == 1
        assert grid_layer.stats.grid_cells == space.grid_size
        assert grid.cells_executed == space.grid_size
        assert grid.cells_skipped == 0

    @pytest.mark.parametrize(
        "columns, bounds, max_scores",
        [
            (("x",), (30.0,), [70.0]),
            (("x", "y", "z"), (40.0, 40.0, 40.0), [40.0, 40.0, 40.0]),
        ],
    )
    @pytest.mark.parametrize("aggregate", ("COUNT", "SUM"))
    def test_other_dimensionalities(self, aggregate, columns, bounds,
                                    max_scores):
        database = _database(seed=22, n=150)
        query = _query(aggregate, bounds, columns)
        space = RefinedSpace(query, 15.0 * len(columns), max_scores)
        serial, grid, _ = _pair(
            "memory",
            query,
            [100.0] * len(columns),
            space,
            query.constraint.spec.aggregate,
            database,
        )
        for coords in _grid_coords(space):
            assert grid.block_state(coords) == serial.block_state(coords)

    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    def test_empty_table(self, aggregate):
        database = _database(seed=23, n=0)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial, grid, _ = _pair(
            "memory",
            query,
            [100.0, 100.0],
            space,
            query.constraint.spec.aggregate,
            database,
        )
        for coords in _grid_coords(space):
            assert grid.block_state(coords) == serial.block_state(coords)

    @pytest.mark.parametrize("aggregate", HISTOGRAM_AGGREGATES)
    def test_histogram_backend(self, aggregate):
        database = _database(seed=24, n=180)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial_layer = HistogramBackend(database)
        grid_layer = HistogramBackend(database)
        agg = query.constraint.spec.aggregate
        serial = Explorer(
            serial_layer, serial_layer.prepare(query, [100.0, 100.0]),
            space, agg,
        )
        grid = GridExplorer(
            grid_layer, grid_layer.prepare(query, [100.0, 100.0]),
            space, agg,
        )
        for coords in _grid_coords(space):
            assert grid.block_state(coords) == serial.block_state(coords)

    @pytest.mark.parametrize("aggregate", ("COUNT", "SUM"))
    def test_sampling_backend(self, aggregate):
        database = _database(seed=25, n=300)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial_layer = SamplingBackend(database, fraction=0.5, seed=3)
        grid_layer = SamplingBackend(database, fraction=0.5, seed=3)
        agg = query.constraint.spec.aggregate
        serial = Explorer(
            serial_layer, serial_layer.prepare(query, [100.0, 100.0]),
            space, agg,
        )
        grid = GridExplorer(
            grid_layer, grid_layer.prepare(query, [100.0, 100.0]),
            space, agg,
        )
        for coords in _grid_coords(space):
            assert grid.block_state(coords) == serial.block_state(coords)

    def test_user_defined_aggregate_generic_fold(self):
        """A user aggregate takes the generic Python prefix fold and
        still matches the serial Explorer bit for bit."""
        total = UserDefinedAggregate(
            name="TOTAL",
            identity=(0.0,),
            combine=lambda left, right: (left[0] + right[0],),
            lift=lambda values: (float(np.sum(values)),),
        )
        database = _database(seed=26, n=160)
        query = _query(total)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial, grid, _ = _pair(
            "memory", query, [100.0, 100.0], space, total, database
        )
        for coords in _grid_coords(space):
            assert grid.block_state(coords) == serial.block_state(coords)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n=st.integers(min_value=0, max_value=120),
        aggregate=st.sampled_from(ALL_AGGREGATES),
        backend_name=st.sampled_from(("memory", "sqlite")),
        bound_x=st.floats(min_value=5.0, max_value=60.0),
        bound_y=st.floats(min_value=5.0, max_value=60.0),
        gamma=st.floats(min_value=16.0, max_value=40.0),
    )
    def test_random_grids(
        self, seed, n, aggregate, backend_name, bound_x, bound_y, gamma
    ):
        """Property: over random data, grids and aggregates, every
        block state of the materialized engine equals the serial
        Explorer's — including empty cells and empty tables."""
        database = _database(seed=seed, n=n)
        query = _query(aggregate, (bound_x, bound_y))
        space = RefinedSpace(query, gamma, [80.0, 80.0])
        serial, grid, _ = _pair(
            backend_name,
            query,
            [150.0, 150.0],
            space,
            query.constraint.spec.aggregate,
            database,
        )
        for coords in _grid_coords(space)[:40]:
            assert grid.block_state(coords) == serial.block_state(coords), (
                coords
            )


# ----------------------------------------------------------------------
# Counters: one round trip for the whole grid
# ----------------------------------------------------------------------
class TestGridCounters:
    def test_single_round_trip_on_native_backends(self):
        database = _database(seed=27, n=150)
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        for backend_name in ("memory", "sqlite"):
            layer = _make_layer(backend_name, database)
            grid = GridExplorer(
                layer,
                layer.prepare(query, [100.0, 100.0]),
                space,
                query.constraint.spec.aggregate,
            )
            before = layer.stats.snapshot()
            for coords in _grid_coords(space):
                grid.compute_aggregate(coords)
            delta = layer.stats.since(before)
            assert delta.queries_executed == 1, backend_name
            assert delta.grid_materializations == 1
            assert delta.grid_cells == space.grid_size

    def test_materialization_is_lazy_and_single(self):
        database = _database(seed=28, n=100)
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        layer = MemoryBackend(database)
        grid = GridExplorer(
            layer,
            layer.prepare(query, [100.0, 100.0]),
            space,
            query.constraint.spec.aggregate,
        )
        assert layer.stats.grid_materializations == 0
        assert grid.cells_executed == 0
        assert grid.prime_cells([space.origin]) == 0
        assert layer.stats.grid_materializations == 0  # priming is a no-op
        grid.compute_aggregate(space.origin)
        grid.compute_aggregate(space.max_coords)
        assert layer.stats.grid_materializations == 1


# ----------------------------------------------------------------------
# prefix_combine unit behavior
# ----------------------------------------------------------------------
class TestPrefixCombine:
    def test_count_cumulative_sum_all_axes(self):
        cells = np.array(
            [[[1.0], [2.0]], [[3.0], [4.0]]]
        )  # 2x2 grid, arity-1 states
        blocks = prefix_combine(cells.copy(), get_aggregate("COUNT"))
        assert blocks[0, 0, 0] == 1.0
        assert blocks[1, 0, 0] == 4.0
        assert blocks[0, 1, 0] == 3.0
        assert blocks[1, 1, 0] == 10.0

    def test_max_running_maximum(self):
        cells = np.array([[[5.0], [1.0]], [[2.0], [9.0]]])
        blocks = prefix_combine(cells.copy(), get_aggregate("MAX"))
        assert blocks[1, 1, 0] == 9.0
        assert blocks[1, 0, 0] == 5.0
        assert blocks[0, 1, 0] == 5.0

    def test_generic_fold_matches_vectorized(self):
        summish = UserDefinedAggregate(
            name="TOTAL",
            identity=(0.0,),
            combine=lambda left, right: (left[0] + right[0],),
            lift=lambda values: (float(np.sum(values)),),
        )
        rng = np.random.default_rng(5)
        cells = np.floor(rng.uniform(0, 40, (3, 4, 2, 1))) / 4.0
        generic = prefix_combine(cells.copy(), summish)
        vectorized = prefix_combine(cells.copy(), get_aggregate("SUM"))
        assert generic.dtype == object
        for index in np.ndindex(generic.shape):
            assert generic[index] == (vectorized[index][0],)


# ----------------------------------------------------------------------
# Plan chooser (explore_mode='auto')
# ----------------------------------------------------------------------
def _plan(query, config, max_scores=(70.0, 70.0), n=400, seed=31):
    database = _database(seed=seed, n=n)
    layer = MemoryBackend(database)
    space = RefinedSpace(query, 20.0, list(max_scores))
    return choose_explore_mode(layer, query, space, config)


class TestPlanChooser:
    def test_dense_search_materializes(self):
        plan = _plan(_query("COUNT", target=380.0), AcquireConfig(
            explore_mode="auto"))
        assert plan.mode == "materialized"
        assert plan.reason == "cost-model"
        assert plan.estimated_visited > 1

    def test_eq_overshoot_stays_incremental(self):
        """An equality target below the predicted origin value heads to
        the contraction path; auto must not materialize for it."""
        plan = _plan(_query("COUNT", target=5.0), AcquireConfig(
            explore_mode="auto"))
        assert plan.mode == "incremental"
        assert plan.estimated_visited == 1

    def test_early_terminating_search_stays_incremental(self):
        """A target predicted to be reached after one layer on a big
        grid: visiting a handful of cells beats a full pass."""
        query = _query("COUNT", target=45.0)
        plan = _plan(query, AcquireConfig(explore_mode="auto"),
                     max_scores=(340.0, 340.0))
        assert plan.mode == "incremental"
        assert plan.reason == "cost-model"
        assert 0 < plan.estimated_visited < plan.grid_cells

    def test_grid_over_cap_falls_back_to_tiled(self):
        plan = _plan(_query("COUNT", target=380.0), AcquireConfig(
            explore_mode="auto", materialize_cell_cap=4))
        assert plan.mode == "tiled"
        assert plan.reason == "grid-over-cap"

    def test_grid_over_budget_goes_tiled(self):
        """The materialized path must respect ``max_grid_queries``: a
        grid bigger than the budget may not be materialized whole even
        when it fits the tensor cap."""
        plan = _plan(_query("COUNT", target=380.0), AcquireConfig(
            explore_mode="auto", max_grid_queries=4))
        assert plan.mode == "tiled"
        assert plan.reason == "grid-over-budget"

    def test_forced_tiled_passes_through(self):
        plan = _plan(_query("COUNT", target=380.0), AcquireConfig(
            explore_mode="tiled"))
        assert (plan.mode, plan.reason) == ("tiled", "forced")

    def test_forced_materialized_over_cap_raises(self):
        with pytest.raises(QueryModelError):
            _plan(_query("COUNT"), AcquireConfig(
                explore_mode="materialized", materialize_cell_cap=4))

    def test_statless_layer_uses_small_grid_rule(self):
        database = _database(seed=32, n=100)
        layer = _NoGridWrapper(MemoryBackend(database))  # no .database
        query = _query("COUNT", target=380.0)
        config = AcquireConfig(explore_mode="auto")
        small = RefinedSpace(query, 20.0, [70.0, 70.0])
        plan = choose_explore_mode(layer, query, small, config)
        assert small.grid_size <= SMALL_GRID_CELLS
        assert (plan.mode, plan.reason) == ("materialized", "small-grid")
        big = RefinedSpace(query, 20.0, [3000.0, 3000.0])
        plan = choose_explore_mode(layer, query, big, config)
        assert big.grid_size > SMALL_GRID_CELLS
        assert (plan.mode, plan.reason) == ("incremental", "no-statistics")

    def test_config_validation(self):
        with pytest.raises(QueryModelError):
            AcquireConfig(explore_mode="bogus")
        with pytest.raises(QueryModelError):
            AcquireConfig(materialize_cell_cap=0)


# ----------------------------------------------------------------------
# End to end through Acquire
# ----------------------------------------------------------------------
def _run(database, query, **overrides):
    layer = MemoryBackend(database)
    config = AcquireConfig(gamma=10.0, delta=0.05, **overrides)
    return Acquire(layer).run(query, config)


def _answer_key(result):
    return [
        (a.coords, a.qscore, a.aggregate_value, a.error)
        for a in result.answers
    ]


class TestAcquireModes:
    @pytest.mark.parametrize("aggregate, target", [
        ("COUNT", 150.0), ("SUM", 400.0),
    ])
    def test_modes_agree_and_auto_is_no_worse(self, aggregate, target):
        database = _database(seed=33, n=200)
        query = _query(aggregate, target=target)
        runs = {
            mode: _run(database, query, explore_mode=mode)
            for mode in ("incremental", "materialized", "auto")
        }
        baseline = _answer_key(runs["incremental"])
        assert runs["incremental"].stats.explore_mode == "incremental"
        assert runs["materialized"].stats.explore_mode == "materialized"
        assert runs["auto"].stats.explore_mode in (
            "incremental", "materialized"
        )
        for mode in ("materialized", "auto"):
            assert _answer_key(runs[mode]) == baseline, mode
            assert runs[mode].satisfied == runs["incremental"].satisfied
        assert runs["materialized"].stats.execution.grid_materializations >= 1
        assert runs["incremental"].stats.execution.grid_materializations == 0
        fixed_best = min(
            runs["incremental"].stats.execution.queries_executed,
            runs["materialized"].stats.execution.queries_executed,
        )
        assert runs["auto"].stats.execution.queries_executed <= fixed_best

    def test_auto_over_cap_runs_tiled(self):
        database = _database(seed=34, n=150)
        query = _query("COUNT", target=120.0)
        capped = _run(
            database, query, explore_mode="auto", materialize_cell_cap=2
        )
        plain = _run(database, query, explore_mode="incremental")
        assert capped.stats.explore_mode == "tiled"
        assert capped.stats.plan_reason == "grid-over-cap"
        assert _answer_key(capped) == _answer_key(plain)
        assert capped.stats.execution.grid_tiles >= 1

    def test_forced_materialized_over_cap_raises_in_run(self):
        database = _database(seed=34, n=150)
        query = _query("COUNT", target=120.0)
        with pytest.raises(QueryModelError):
            _run(
                database,
                query,
                explore_mode="materialized",
                materialize_cell_cap=2,
            )

    def test_forced_tiled_matches_incremental(self):
        database = _database(seed=35, n=180)
        query = _query("COUNT", target=140.0)
        tiled = _run(database, query, explore_mode="tiled")
        plain = _run(database, query, explore_mode="incremental")
        assert tiled.stats.explore_mode == "tiled"
        assert tiled.stats.plan_reason == "forced"
        assert _answer_key(tiled) == _answer_key(plain)
        assert tiled.satisfied == plain.satisfied

    def test_grid_budget_respected_by_materializing_paths(self):
        """Satellite: ``max_grid_queries`` must bound the *backend*
        work of the auto path too — a grid larger than the budget may
        not be materialized whole."""
        database = _database(seed=36, n=150)
        query = _query("COUNT", target=120.0)
        budget = 6
        run = _run(
            database,
            query,
            explore_mode="auto",
            max_grid_queries=budget,
        )
        assert run.stats.explore_mode == "tiled"
        assert run.stats.plan_reason == "grid-over-budget"
        assert run.stats.grid_queries_examined <= budget


# ----------------------------------------------------------------------
# TiledGridExplorer == serial Explorer == GridExplorer, bit-identical
# ----------------------------------------------------------------------
class TestTiledMatchesSerial:
    @pytest.mark.parametrize("tile_shape", [(1, 1), (3, 2), (2, 3)])
    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    @pytest.mark.parametrize(
        "backend_name", ["memory", "memory-vectorized", "sqlite", "fallback"]
    )
    def test_exact_backends(self, backend_name, aggregate, tile_shape):
        """Tile shapes that split traversal layers mid-seam (and the
        degenerate one-cell tiling) all reproduce the serial states."""
        database = _database(seed=41, n=180)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial, tiled, tiled_layer = _tiled_pair(
            backend_name,
            query,
            [100.0, 100.0],
            space,
            query.constraint.spec.aggregate,
            database,
            tile_shape=tile_shape,
        )
        for coords in _grid_coords(space):
            assert tiled.block_state(coords) == serial.block_state(coords), (
                coords
            )
            assert tiled.compute_aggregate(
                coords
            ) == serial.compute_aggregate(coords)
        assert tiled_layer.stats.grid_tiles == tiled.tiles_materialized
        assert tiled.cells_executed == space.grid_size

    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    def test_tiled_matches_whole_grid_engine(self, aggregate):
        database = _database(seed=42, n=160)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        agg = query.constraint.spec.aggregate
        _, grid, _ = _pair(
            "memory", query, [100.0, 100.0], space, agg, database
        )
        _, tiled, _ = _tiled_pair(
            "memory", query, [100.0, 100.0], space, agg, database,
            tile_shape=(2, 3),
        )
        for coords in _grid_coords(space):
            assert tiled.block_state(coords) == grid.block_state(coords)

    @pytest.mark.parametrize(
        "columns, bounds, max_scores, tile_shape",
        [
            (("x",), (30.0,), [70.0], (2,)),
            (
                ("x", "y", "z"),
                (40.0, 40.0, 40.0),
                [40.0, 40.0, 40.0],
                (2, 1, 2),
            ),
        ],
    )
    @pytest.mark.parametrize("aggregate", ("COUNT", "MAX"))
    def test_other_dimensionalities(
        self, aggregate, columns, bounds, max_scores, tile_shape
    ):
        database = _database(seed=43, n=150)
        query = _query(aggregate, bounds, columns)
        space = RefinedSpace(query, 15.0 * len(columns), max_scores)
        serial, tiled, _ = _tiled_pair(
            "memory",
            query,
            [100.0] * len(columns),
            space,
            query.constraint.spec.aggregate,
            database,
            tile_shape=tile_shape,
        )
        for coords in _grid_coords(space):
            assert tiled.block_state(coords) == serial.block_state(coords)

    @pytest.mark.parametrize("aggregate", HISTOGRAM_AGGREGATES)
    def test_histogram_backend(self, aggregate):
        database = _database(seed=44, n=180)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        agg = query.constraint.spec.aggregate
        serial_layer = HistogramBackend(database)
        tiled_layer = HistogramBackend(database)
        serial = Explorer(
            serial_layer, serial_layer.prepare(query, [100.0, 100.0]),
            space, agg,
        )
        tiled = TiledGridExplorer(
            tiled_layer, tiled_layer.prepare(query, [100.0, 100.0]),
            space, agg, tile_shape=(2, 3),
        )
        for coords in _grid_coords(space):
            assert tiled.block_state(coords) == serial.block_state(coords)

    @pytest.mark.parametrize("aggregate", ("COUNT", "SUM"))
    def test_sampling_backend(self, aggregate):
        database = _database(seed=45, n=300)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        agg = query.constraint.spec.aggregate
        serial_layer = SamplingBackend(database, fraction=0.5, seed=3)
        tiled_layer = SamplingBackend(database, fraction=0.5, seed=3)
        serial = Explorer(
            serial_layer, serial_layer.prepare(query, [100.0, 100.0]),
            space, agg,
        )
        tiled = TiledGridExplorer(
            tiled_layer, tiled_layer.prepare(query, [100.0, 100.0]),
            space, agg, tile_shape=(3, 2),
        )
        for coords in _grid_coords(space):
            assert tiled.block_state(coords) == serial.block_state(coords)

    def test_user_defined_aggregate_seam_order(self):
        """A non-commutative user aggregate exercises the generic seam
        fold; matching the serial Explorer proves the carry enters each
        line in the serial operand order."""
        concat = UserDefinedAggregate(
            name="FIRST_LAST",
            identity=(np.inf, -np.inf),
            combine=lambda left, right: (
                min(left[0], right[0]),
                max(left[1], right[1]),
            ),
            lift=lambda values: (
                (float(np.min(values)), float(np.max(values)))
                if len(values)
                else (np.inf, -np.inf)
            ),
        )
        database = _database(seed=46, n=160)
        query = _query(concat)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial, tiled, _ = _tiled_pair(
            "memory", query, [100.0, 100.0], space, concat, database,
            tile_shape=(2, 2),
        )
        for coords in _grid_coords(space):
            assert tiled.block_state(coords) == serial.block_state(coords)

    def test_lazy_partial_materialization(self):
        """Only the down-set of touched tiles is ever materialized."""
        database = _database(seed=47, n=150)
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        serial, tiled, tiled_layer = _tiled_pair(
            "memory",
            query,
            [100.0, 100.0],
            space,
            query.constraint.spec.aggregate,
            database,
            tile_shape=(2, 2),
        )
        assert tiled.tiles_materialized == 0
        assert tiled.block_state(space.origin) == serial.block_state(
            space.origin
        )
        assert tiled.tiles_materialized == 1
        assert tiled.cells_executed == 4
        assert tiled_layer.stats.grid_tiles == 1
        # The far corner needs the full down-set: every tile.
        tiled.block_state(space.max_coords)
        assert tiled.cells_executed == space.grid_size

    def test_prime_cells_reports_new_work_only(self):
        database = _database(seed=48, n=120)
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        _, tiled, _ = _tiled_pair(
            "memory",
            query,
            [100.0, 100.0],
            space,
            query.constraint.spec.aggregate,
            database,
            tile_shape=(2, 2),
        )
        executed = tiled.prime_cells([space.origin])
        assert executed == 4
        assert tiled.prime_cells([space.origin]) == 0

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n=st.integers(min_value=0, max_value=100),
        aggregate=st.sampled_from(ALL_AGGREGATES),
        backend_name=st.sampled_from(("memory", "sqlite")),
        width_x=st.integers(min_value=1, max_value=4),
        width_y=st.integers(min_value=1, max_value=4),
        gamma=st.floats(min_value=16.0, max_value=40.0),
    )
    def test_random_tilings(
        self, seed, n, aggregate, backend_name, width_x, width_y, gamma
    ):
        """Property: over random data, grids and tile shapes, every
        tiled block state equals the serial Explorer's."""
        database = _database(seed=seed, n=n)
        query = _query(aggregate)
        space = RefinedSpace(query, gamma, [80.0, 80.0])
        serial, tiled, _ = _tiled_pair(
            backend_name,
            query,
            [150.0, 150.0],
            space,
            query.constraint.spec.aggregate,
            database,
            tile_shape=(width_x, width_y),
        )
        for coords in _grid_coords(space)[:40]:
            assert tiled.block_state(coords) == serial.block_state(coords), (
                coords
            )


# ----------------------------------------------------------------------
# execute_grid_tile == the corresponding execute_grid slice
# ----------------------------------------------------------------------
def _tile_layer(backend_name, database):
    if backend_name == "histogram":
        return HistogramBackend(database)
    if backend_name == "sampling":
        return SamplingBackend(database, fraction=0.5, seed=3)
    return _make_layer(backend_name, database)


class TestExecuteGridTile:
    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    @pytest.mark.parametrize(
        "backend_name",
        ["memory", "memory-vectorized", "sqlite", "sampling", "fallback"],
    )
    def test_tile_is_grid_slice(self, backend_name, aggregate):
        database = _database(seed=51, n=200)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        layer = _tile_layer(backend_name, database)
        prepared = layer.prepare(query, [100.0, 100.0])
        full = layer.execute_grid(prepared, space)
        lo = (1, 0)
        hi = (space.max_coords[0] - 1, space.max_coords[1])
        tile = layer.execute_grid_tile(prepared, space, lo, hi)
        expected = full[lo[0]:hi[0] + 1, lo[1]:hi[1] + 1]
        assert tile.shape == expected.shape
        assert np.array_equal(tile, expected), backend_name

    @pytest.mark.parametrize("aggregate", HISTOGRAM_AGGREGATES)
    def test_histogram_tile_is_grid_slice(self, aggregate):
        database = _database(seed=52, n=200)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        layer = HistogramBackend(database)
        prepared = layer.prepare(query, [100.0, 100.0])
        full = layer.execute_grid(prepared, space)
        lo, hi = (1, 1), (2, space.max_coords[1])
        tile = layer.execute_grid_tile(prepared, space, lo, hi)
        assert np.array_equal(tile, full[1:3, 1:hi[1] + 1])

    def test_single_cell_tile_matches_execute_cell(self):
        database = _database(seed=53, n=150)
        query = _query("SUM")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [100.0, 100.0])
        tile = layer.execute_grid_tile(prepared, space, (2, 1), (2, 1))
        cell = layer.execute_cell(prepared, space, (2, 1))
        assert tuple(float(v) for v in tile[0, 0]) == cell

    def test_tile_counters(self):
        database = _database(seed=54, n=150)
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [100.0, 100.0])
        before = layer.stats.snapshot()
        layer.execute_grid_tile(prepared, space, (0, 0), (1, 1))
        delta = layer.stats.since(before)
        assert delta.queries_executed == 1
        assert delta.grid_tiles == 1
        assert delta.grid_materializations == 1
        assert delta.grid_cells == 4

    @pytest.mark.parametrize(
        "lo, hi",
        [
            ((0,), (1, 1)),        # arity mismatch
            ((2, 2), (1, 3)),      # lo > hi
            ((0, 0), (0, 99)),     # beyond the grid extent
            ((-1, 0), (1, 1)),     # negative coordinate
        ],
    )
    def test_bad_bounds_raise(self, lo, hi):
        database = _database(seed=55, n=50)
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [100.0, 100.0])
        with pytest.raises(EngineError):
            layer.execute_grid_tile(prepared, space, lo, hi)


# ----------------------------------------------------------------------
# Tiling helpers
# ----------------------------------------------------------------------
class TestTileHelpers:
    def test_tile_shape_for_respects_budget(self):
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        full = tuple(limit + 1 for limit in space.max_coords)
        assert tile_shape_for(space, space.grid_size) == full
        capped = tile_shape_for(space, 4)
        assert int(np.prod(capped)) <= 4
        assert all(width >= 1 for width in capped)
        assert tile_shape_for(space, 1) == (1,) * space.d

    def test_explicit_tile_shape_validated(self):
        database = _database(seed=56, n=50)
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [100.0, 100.0])
        aggregate = query.constraint.spec.aggregate
        for bad in [(2,), (0, 2), (2, -1)]:
            with pytest.raises(SearchError):
                TiledGridExplorer(
                    layer, prepared, space, aggregate, tile_shape=bad
                )


# ----------------------------------------------------------------------
# Aliasing: the prefix passes must never write their input tensors
# ----------------------------------------------------------------------
class TestAliasingRegression:
    def test_prefix_combine_leaves_input_unchanged(self):
        """Regression: ``prefix_combine`` used to accumulate with
        ``out=tensor``, corrupting the caller's (possibly shared) cell
        tensor in place."""
        rng = np.random.default_rng(7)
        cells = np.floor(rng.uniform(0, 40, (3, 4, 1))) / 4.0
        pristine = cells.copy()
        blocks = prefix_combine(cells, get_aggregate("SUM"))
        assert blocks is not cells
        assert np.array_equal(cells, pristine)

    def test_tile_prefix_combine_leaves_input_and_carries_unchanged(self):
        rng = np.random.default_rng(8)
        cells = np.floor(rng.uniform(0, 40, (3, 4, 1))) / 4.0
        carries = {
            0: np.floor(rng.uniform(0, 40, (4, 1))) / 4.0,
            1: np.floor(rng.uniform(0, 40, (3, 1))) / 4.0,
        }
        pristine = cells.copy()
        pristine_carries = {k: v.copy() for k, v in carries.items()}
        blocks, seams = tile_prefix_combine(
            cells, get_aggregate("MAX"), carries
        )
        assert blocks is not cells
        assert np.array_equal(cells, pristine)
        for axis, carry in carries.items():
            assert np.array_equal(carry, pristine_carries[axis])
        # Seams are private copies, not views into the block tensor.
        for seam in seams.values():
            assert not np.shares_memory(seam, blocks)

    def test_block_state_leaves_cached_tensor_unchanged(self):
        """Satellite regression: running the prefix passes through
        ``block_state`` must not corrupt the cached (shared) source
        tensor — a second consumer must read the raw cell states."""
        database = _database(seed=57, n=150)
        query = _query("SUM")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [100.0, 100.0])
        aggregate = query.constraint.spec.aggregate
        cache = GridTensorCache()
        explorer = GridExplorer(
            layer, prepared, space, aggregate, cache=cache
        )
        explorer.block_state(space.max_coords)
        key = GridTensorCache.key_for(layer, query, space)
        cached = cache.get(key)
        assert cached is not None
        assert not cached.flags.writeable
        fresh = layer.execute_grid(prepared, space)
        assert np.array_equal(cached, fresh)


# ----------------------------------------------------------------------
# GridTensorCache unit behavior
# ----------------------------------------------------------------------
class TestGridTensorCache:
    def test_put_get_and_counters(self):
        cache = GridTensorCache(max_bytes=4096)
        tensor = np.arange(8, dtype=np.float64).reshape(4, 2)
        stored = cache.put("k", tensor)
        assert not stored.flags.writeable
        assert cache.get("missing") is None
        hit = cache.get("k")
        assert np.array_equal(hit, tensor)
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_put_copies_writable_input(self):
        cache = GridTensorCache(max_bytes=4096)
        tensor = np.zeros((2, 2))
        stored = cache.put("k", tensor)
        tensor[0, 0] = 99.0
        assert stored[0, 0] == 0.0
        assert cache.get("k")[0, 0] == 0.0

    def test_lru_eviction_by_bytes(self):
        entry = np.zeros(16)  # 128 bytes each
        cache = GridTensorCache(max_bytes=300)
        cache.put("a", entry)
        cache.put("b", entry)
        assert cache.get("a") is not None  # "a" is now most recent
        cache.put("c", entry)  # 384 bytes > 300: evict LRU ("b")
        assert cache.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.current_bytes <= cache.max_bytes

    def test_oversized_entry_not_admitted(self):
        cache = GridTensorCache(max_bytes=100)
        stored = cache.put("big", np.zeros(64))  # 512 bytes
        assert not stored.flags.writeable  # still usable by the caller
        assert len(cache) == 0
        assert cache.get("big") is None

    def test_budget_validated(self):
        with pytest.raises(QueryModelError):
            GridTensorCache(max_bytes=0)

    def test_clear(self):
        cache = GridTensorCache(max_bytes=4096)
        cache.put("k", np.zeros(4))
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_layer_tokens_are_unique_and_stable(self):
        database = _database(seed=58, n=20)
        first = MemoryBackend(database)
        second = MemoryBackend(database)
        assert layer_cache_token(first) == layer_cache_token(first)
        assert layer_cache_token(first) != layer_cache_token(second)

    def test_keys_separate_layers(self):
        database = _database(seed=58, n=20)
        query = _query("COUNT")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        first = MemoryBackend(database)
        second = MemoryBackend(database)
        assert GridTensorCache.key_for(
            first, query, space
        ) != GridTensorCache.key_for(second, query, space)

    def test_fingerprint_ignores_constraint_target(self):
        """The whole point of the cache: sweep points over targets (or
        operators) share one entry."""
        base = query_fingerprint(_query("COUNT", target=100.0))
        assert base == query_fingerprint(_query("COUNT", target=250.0))
        assert base == query_fingerprint(
            _query("COUNT", target=50.0, op=ConstraintOp.GE)
        )

    def test_fingerprint_sees_predicates_and_aggregate(self):
        base = query_fingerprint(_query("COUNT"))
        assert base != query_fingerprint(_query("SUM"))
        assert base != query_fingerprint(_query("COUNT", bounds=(40.0, 30.0)))


# ----------------------------------------------------------------------
# Cache-hit replay is bit-for-bit
# ----------------------------------------------------------------------
class TestCacheReplay:
    @pytest.mark.parametrize("aggregate", ("COUNT", "SUM", "MIN"))
    def test_materialized_replay(self, aggregate):
        database = _database(seed=61, n=180)
        query = _query(aggregate)
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [100.0, 100.0])
        agg = query.constraint.spec.aggregate
        cache = GridTensorCache()
        first = GridExplorer(layer, prepared, space, agg, cache=cache)
        reference = {
            coords: first.block_state(coords)
            for coords in _grid_coords(space)
        }
        assert layer.stats.cache_misses == 1
        before = layer.stats.snapshot()
        replay = GridExplorer(layer, prepared, space, agg, cache=cache)
        for coords, expected in reference.items():
            assert replay.block_state(coords) == expected, coords
        delta = layer.stats.since(before)
        assert delta.cache_hits == 1
        assert delta.queries_executed == 0  # no backend pass at all
        assert replay.cells_executed == 0

    def test_tiled_replay(self):
        database = _database(seed=62, n=180)
        query = _query("SUM")
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [100.0, 100.0])
        agg = query.constraint.spec.aggregate
        cache = GridTensorCache()
        first = TiledGridExplorer(
            layer, prepared, space, agg, tile_shape=(2, 2), cache=cache
        )
        reference = {
            coords: first.block_state(coords)
            for coords in _grid_coords(space)
        }
        tiles = first.tiles_materialized
        assert tiles > 1
        before = layer.stats.snapshot()
        replay = TiledGridExplorer(
            layer, prepared, space, agg, tile_shape=(2, 2), cache=cache
        )
        for coords, expected in reference.items():
            assert replay.block_state(coords) == expected, coords
        delta = layer.stats.since(before)
        assert delta.cache_hits == tiles
        assert delta.queries_executed == 0
        assert replay.cells_executed == 0

    def test_acquire_sweep_reuses_tensors(self):
        """End to end: a second Acquire run over a different target on
        the same layer serves the grid from cache — same answers as an
        uncached run, strictly fewer backend queries."""
        database = _database(seed=63, n=200)
        layer = MemoryBackend(database)
        cache = GridTensorCache()
        config = lambda **kw: AcquireConfig(  # noqa: E731
            gamma=10.0, delta=0.05, explore_mode="materialized", **kw
        )
        Acquire(layer).run(_query("COUNT", target=150.0),
                           config(grid_cache=cache))
        before = layer.stats.snapshot()
        cached = Acquire(layer).run(_query("COUNT", target=180.0),
                                    config(grid_cache=cache))
        cached_delta = layer.stats.since(before)
        fresh_layer = MemoryBackend(database)
        uncached = Acquire(fresh_layer).run(_query("COUNT", target=180.0),
                                            config())
        assert _answer_key(cached) == _answer_key(uncached)
        assert cached_delta.cache_hits >= 1
        assert (
            cached_delta.queries_executed
            < fresh_layer.stats.queries_executed
        )


# ----------------------------------------------------------------------
# PlanCalibration
# ----------------------------------------------------------------------
class TestPlanCalibration:
    def test_identity_until_observed(self):
        calibration = PlanCalibration()
        assert calibration.factor() == 1.0
        assert calibration.correct(40) == 40
        assert calibration.observations == 0

    def test_geometric_mean_correction(self):
        calibration = PlanCalibration()
        calibration.observe(10, 20)
        assert calibration.factor() == pytest.approx(2.0)
        assert calibration.correct(10) == 20
        calibration.observe(10, 5)  # ratios 2.0 and 0.5: geo-mean 1.0
        assert calibration.factor() == pytest.approx(1.0)

    def test_zero_observations_ignored(self):
        calibration = PlanCalibration()
        calibration.observe(0, 50)
        calibration.observe(50, 0)
        assert calibration.observations == 0
        assert calibration.factor() == 1.0

    def test_window_slides(self):
        calibration = PlanCalibration(window=2)
        calibration.observe(10, 80)  # falls out of the window
        calibration.observe(10, 20)
        calibration.observe(10, 20)
        assert calibration.observations == 2
        assert calibration.factor() == pytest.approx(2.0)

    def test_correct_never_below_one(self):
        calibration = PlanCalibration()
        calibration.observe(100, 1)
        assert calibration.correct(3) == 1

    def test_window_validated(self):
        with pytest.raises(QueryModelError):
            PlanCalibration(window=0)

    def test_driver_feeds_observations(self):
        database = _database(seed=64, n=200)
        calibration = PlanCalibration()
        result = _run(
            database,
            _query("COUNT", target=150.0),
            explore_mode="auto",
            calibration=calibration,
        )
        assert result.stats.estimated_visited > 0
        assert calibration.observations == 1

    def test_concurrent_hammer(self):
        """N threads feed and read one instance at once — the shared
        service shape. Windowed counts must come out exact, and the
        geometric mean well-defined, under any interleaving."""
        import threading

        threads_n, per_thread = 8, 200
        calibration = PlanCalibration(window=threads_n * per_thread)
        barrier = threading.Barrier(threads_n)
        errors: list[BaseException] = []

        def hammer(seed: int) -> None:
            try:
                barrier.wait()
                for step in range(per_thread):
                    calibration.observe(10, 20 if seed % 2 else 5)
                    calibration.observe_pass(1000, 0.01)
                    calibration.observe_spawn(1, 0.5)
                    calibration.observe_ipc(4, 0.02)
                    # Interleave reads with writes: accessors must see
                    # internally consistent windows, never raise.
                    assert calibration.factor() > 0.0
                    assert calibration.correct(100) >= 1
                    assert calibration.pass_rate() >= 0.0
                    assert calibration.spawn_cost_rows(1000, 2) >= 0
                    assert calibration.ipc_cost_rows(64) >= 0
            except BaseException as error:  # surfaced after join
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert calibration.observations == threads_n * per_thread
        # 4 threads pushed ratio 2.0, 4 pushed 0.5: geo-mean is 1.0.
        assert calibration.factor() == pytest.approx(1.0)
        assert calibration.pass_rate() == pytest.approx(100_000.0)


# ----------------------------------------------------------------------
# SearchStats.layers_explored counts repartitioned answers too
# ----------------------------------------------------------------------
class TestLayersExploredStats:
    def test_repartition_only_answers_counted(self):
        """Satellite regression: a search whose only answers come from
        repartitioning (grid ``coords`` is None) used to report
        ``layers_explored == 0``."""
        database = Database()
        database.create_table(
            "t",
            {
                # count(x <= 30) = 10, count(x <= 40) = 15: the grid
                # point at score 10 overshoots target 12 and the
                # bisection's first midpoint (bound 35) hits it exactly.
                "x": np.array(
                    [5.0] * 10 + [31.0, 32.0, 39.0, 39.0, 39.0]
                ),
                "y": np.zeros(15),
                "z": np.zeros(15),
                "v": np.zeros(15),
            },
        )
        query = _query(
            "COUNT", bounds=(30.0,), columns=("x",), target=12.0
        )
        result = _run(database, query, step=10.0)
        assert result.answers, "scenario must produce an answer"
        assert all(answer.coords is None for answer in result.answers)
        assert result.stats.repartition_probes >= 1
        assert result.stats.layers_explored == 1

    def test_mixed_answers_count_distinct_layers(self):
        database = _database(seed=65, n=200)
        result = _run(database, _query("COUNT", target=150.0))
        if result.answers:
            expected = len({round(a.qscore, 9) for a in result.answers})
            assert result.stats.layers_explored == expected
