"""Unit and property tests for OSP aggregates (paper section 2.6)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import (
    AVG,
    COUNT,
    MAX,
    MIN,
    SUM,
    AggregateSpec,
    UserDefinedAggregate,
    get_aggregate,
)
from repro.engine.expression import col
from repro.exceptions import OSPViolationError, QueryModelError

ALL = (COUNT, SUM, MIN, MAX, AVG)

value_arrays = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=0,
    max_size=50,
).map(np.array)


class TestLookup:
    @pytest.mark.parametrize("name", ["COUNT", "sum", "Min", "MAX", "avg"])
    def test_builtins(self, name):
        assert get_aggregate(name).name == name.upper()

    @pytest.mark.parametrize("name", ["STDDEV", "variance", "median"])
    def test_non_osp_rejected(self, name):
        with pytest.raises(OSPViolationError, match="optimal substructure"):
            get_aggregate(name)

    def test_unknown_rejected(self):
        with pytest.raises(QueryModelError):
            get_aggregate("FANCY")


class TestSemantics:
    def test_count(self):
        assert COUNT.finalize(COUNT.lift(np.array([5.0, 6.0]))) == 2.0
        assert COUNT.finalize(COUNT.identity()) == 0.0

    def test_sum(self):
        assert SUM.finalize(SUM.lift(np.array([1.0, 2.5]))) == 3.5

    def test_min_max_empty_is_nan(self):
        assert math.isnan(MIN.finalize(MIN.identity()))
        assert math.isnan(MAX.finalize(MAX.identity()))

    def test_avg(self):
        state = AVG.lift(np.array([2.0, 4.0]))
        assert state == (6.0, 2.0)
        assert AVG.finalize(state) == 3.0
        assert math.isnan(AVG.finalize(AVG.identity()))

    def test_subtract(self):
        total = SUM.lift(np.array([1.0, 2.0, 3.0]))
        part = SUM.lift(np.array([3.0]))
        assert SUM.finalize(SUM.subtract(total, part)) == 3.0
        with pytest.raises(OSPViolationError):
            MAX.subtract((5.0,), (2.0,))

    def test_monotone_flags(self):
        assert COUNT.monotone_expanding
        assert SUM.monotone_expanding
        assert MAX.monotone_expanding
        assert not MIN.monotone_expanding
        assert not AVG.monotone_expanding

    def test_state_from_sql_null_handling(self):
        assert SUM.state_from_sql((None,)) == (0.0,)
        assert MIN.state_from_sql((None,)) == (math.inf,)
        assert MAX.state_from_sql((None,)) == (-math.inf,)


class TestOSPProperty:
    """The defining property: combine over a partition == lift of whole."""

    @pytest.mark.parametrize("aggregate", ALL, ids=lambda a: a.name)
    @settings(max_examples=100, deadline=None)
    @given(value_arrays, value_arrays)
    def test_combine_is_lift_of_union(self, aggregate, left, right):
        combined = aggregate.combine(aggregate.lift(left), aggregate.lift(right))
        whole = aggregate.lift(np.concatenate([left, right]))
        for part_a, part_b in zip(combined, whole):
            assert part_a == pytest.approx(part_b, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("aggregate", ALL, ids=lambda a: a.name)
    def test_identity_is_neutral(self, aggregate):
        state = aggregate.lift(np.array([1.0, 2.0, 3.0]))
        assert aggregate.combine(state, aggregate.identity()) == state
        assert aggregate.combine(aggregate.identity(), state) == state

    @pytest.mark.parametrize("aggregate", ALL, ids=lambda a: a.name)
    @settings(max_examples=50, deadline=None)
    @given(value_arrays, value_arrays, value_arrays)
    def test_combine_associative(self, aggregate, a, b, c):
        left = aggregate.combine(
            aggregate.combine(aggregate.lift(a), aggregate.lift(b)),
            aggregate.lift(c),
        )
        right = aggregate.combine(
            aggregate.lift(a),
            aggregate.combine(aggregate.lift(b), aggregate.lift(c)),
        )
        for part_a, part_b in zip(left, right):
            assert part_a == pytest.approx(part_b, rel=1e-9, abs=1e-9)


class TestUserDefined:
    def test_sum_of_squares(self):
        ssq = UserDefinedAggregate(
            "ssq",
            identity=(0.0,),
            combine=lambda a, b: (a[0] + b[0],),
            lift=lambda values: (float(np.sum(values**2)),),
            monotone_expanding=True,
        )
        assert ssq.name == "SSQ"
        state = ssq.combine(
            ssq.lift(np.array([1.0, 2.0])), ssq.lift(np.array([3.0]))
        )
        assert ssq.finalize(state) == 14.0

    def test_sql_rendering_optional(self):
        uda = UserDefinedAggregate(
            "x", (0.0,), lambda a, b: a, lambda v: (0.0,)
        )
        with pytest.raises(OSPViolationError):
            uda.sql_selects("t.a")


class TestAggregateSpec:
    def test_count_star(self):
        spec = AggregateSpec(COUNT)
        assert spec.describe() == "COUNT(*)"

    def test_needs_attribute(self):
        with pytest.raises(QueryModelError):
            AggregateSpec(SUM)
        spec = AggregateSpec(SUM, col("t.a"))
        assert spec.describe() == "SUM(t.a)"
