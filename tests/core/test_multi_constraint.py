"""Multi-constraint ACQs: conjunction semantics end to end."""

from __future__ import annotations

import pytest

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.error import default_error_for
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.core.scoring import MaxConstraintDistance, SumConstraintDistance
from repro.engine.expression import col
from repro.engine.memory_backend import MemoryBackend

from tests.conftest import count_query


def _sum_constraint(column: str, op: ConstraintOp, target: float):
    return AggregateConstraint(
        AggregateSpec(get_aggregate("SUM"), col(column)), op, target
    )


def _with_extra(query: Query, *extras) -> Query:
    return Query.build(
        query.name,
        query.tables,
        query.predicates,
        query.constraint,
        extra_constraints=extras,
    )


def _run(db, query, **overrides):
    defaults = dict(gamma=20.0, delta=0.05, repartition_iterations=0)
    defaults.update(overrides)
    return Acquire(MemoryBackend(db)).run(query, AcquireConfig(**defaults))


class TestQueryModel:
    def test_constraints_property_primary_first(self, small_db):
        base = count_query("data", {"x": 40.0}, 200.0, ConstraintOp.GE)
        extra = _sum_constraint("data.y", ConstraintOp.GE, 5000.0)
        query = _with_extra(base, extra)
        assert query.constraints == (query.constraint, extra)

    def test_with_only_constraint_drops_extras(self, small_db):
        base = count_query("data", {"x": 40.0}, 200.0, ConstraintOp.GE)
        extra = _sum_constraint("data.y", ConstraintOp.GE, 5000.0)
        query = _with_extra(base, extra)
        only = query.with_only_constraint(extra)
        assert only.constraint is extra
        assert only.extra_constraints == ()
        assert only.predicates == query.predicates

    def test_describe_renders_conjunction(self, small_db):
        base = count_query("data", {"x": 40.0}, 200.0, ConstraintOp.GE)
        query = _with_extra(
            base, _sum_constraint("data.y", ConstraintOp.GE, 5000.0)
        )
        text = query.describe()
        assert "COUNT(*) >= 200" in text
        assert " AND SUM(data.y) >= 5000" in text


class TestDistanceCombiners:
    def test_max_distance_is_conjunction(self):
        distance = MaxConstraintDistance()
        assert distance.combine([0.0, 0.2, 0.1]) == 0.2
        assert distance.combine([]) == 0.0

    def test_sum_distance_accumulates(self):
        distance = SumConstraintDistance()
        assert distance.combine([0.1, 0.2]) == pytest.approx(0.3)


class TestAcquireConjunction:
    def test_answers_satisfy_every_constraint(self, small_db):
        base = count_query(
            "data", {"x": 40.0, "y": 40.0}, 150.0, ConstraintOp.GE
        )
        extra = _sum_constraint("data.z", ConstraintOp.GE, 6000.0)
        query = _with_extra(base, extra)
        config_delta = 0.05
        result = _run(small_db, query, delta=config_delta)
        assert result.satisfied
        extra_error_fn = default_error_for(extra.op)
        for answer in result.answers:
            assert len(answer.extra_values) == 1
            assert answer.aggregate_values == (
                answer.aggregate_value,
            ) + answer.extra_values
            # Combined (max) distance within delta means each
            # constraint is individually within delta.
            assert extra_error_fn(
                extra.target, answer.extra_values[0]
            ) <= config_delta + 1e-12

    def test_extra_constraint_can_change_the_answer(self, small_db):
        base = count_query(
            "data", {"x": 40.0, "y": 40.0}, 150.0, ConstraintOp.GE
        )
        plain = _run(small_db, base)
        # An extra demand the plain winner cannot meet pushes the
        # search further out.
        demanding = _sum_constraint("data.z", ConstraintOp.GE, 12000.0)
        harder = _run(small_db, _with_extra(base, demanding))
        assert plain.satisfied and harder.satisfied
        assert harder.qscore >= plain.qscore

    def test_single_constraint_distance_is_identity(self, small_db):
        base = count_query("data", {"x": 40.0}, 250.0, ConstraintOp.GE)
        default = _run(small_db, base)
        summed = _run(
            small_db, base, constraint_distance=SumConstraintDistance()
        )
        assert [a.pscores for a in default.answers] == [
            a.pscores for a in summed.answers
        ]

    def test_contraction_with_extra_constraint(self, small_db):
        base = count_query("data", {"x": 60.0}, 150.0, ConstraintOp.LE)
        extra = _sum_constraint("data.y", ConstraintOp.LE, 9000.0)
        query = _with_extra(base, extra)
        result = _run(small_db, query)
        assert result.satisfied
        for answer in result.answers:
            assert len(answer.extra_values) == 1
            assert answer.extra_values[0] <= 9000.0 * 1.05 + 1e-9

    def test_top_k_with_extras_is_monotone(self, small_db):
        base = count_query(
            "data", {"x": 40.0, "y": 40.0}, 150.0, ConstraintOp.GE
        )
        extra = _sum_constraint("data.z", ConstraintOp.GE, 6000.0)
        result = _run(small_db, _with_extra(base, extra), top_k=3)
        qscores = [answer.qscore for answer in result.top(3)]
        assert qscores == sorted(qscores)
