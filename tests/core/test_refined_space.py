"""Unit tests for the refined space grid (paper section 4)."""

import math

import pytest

from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.interval import Interval
from repro.core.predicate import Direction, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.core.refined_space import BASE_CELL_LO, MAX_COORD_CAP, RefinedSpace
from repro.core.scoring import LInfNorm
from repro.engine.expression import col
from repro.exceptions import QueryModelError


def make_query(d=2, weights=None, limits=None):
    weights = weights or [1.0] * d
    limits = limits or [None] * d
    predicates = [
        SelectPredicate(
            name=f"p{i}",
            expr=col(f"t.c{i}"),
            interval=Interval(0, 50),
            direction=Direction.UPPER,
            weight=weights[i],
            limit=limits[i],
        )
        for i in range(d)
    ]
    constraint = AggregateConstraint(
        AggregateSpec(get_aggregate("COUNT")), ConstraintOp.EQ, 100
    )
    return Query.build("q", ("t",), predicates, constraint)


class TestConstruction:
    def test_step_is_gamma_over_d(self):
        space = RefinedSpace(make_query(2), gamma=10.0, max_scores=[100, 100])
        assert space.step == 5.0
        assert space.d == 2

    def test_explicit_step(self):
        space = RefinedSpace(
            make_query(2), gamma=10.0, max_scores=[100, 100], step=2.0
        )
        assert space.step == 2.0

    def test_max_coords_from_scores(self):
        space = RefinedSpace(make_query(2), 10.0, [50, 23])
        assert space.max_coords == (10, 5)

    def test_limit_caps_dimension(self):
        """Section 7.1: per-predicate refinement limits."""
        space = RefinedSpace(
            make_query(2, limits=[10.0, None]), 10.0, [100, 100]
        )
        assert space.max_coords == (2, 20)

    def test_infinite_scores_capped(self):
        space = RefinedSpace(make_query(1), 10.0, [math.inf])
        assert space.max_coords == (MAX_COORD_CAP,)

    def test_no_refinable_predicates_rejected(self):
        query = make_query(1)
        pinned = query.with_predicates(
            [p.with_norefine() for p in query.predicates]
        )
        with pytest.raises(QueryModelError):
            RefinedSpace(pinned, 10.0, [])

    def test_bad_gamma(self):
        with pytest.raises(QueryModelError):
            RefinedSpace(make_query(1), 0.0, [10])

    def test_arity_mismatch(self):
        with pytest.raises(QueryModelError):
            RefinedSpace(make_query(2), 10.0, [10])


class TestCoordinates:
    def test_scores_and_qscore(self):
        space = RefinedSpace(make_query(2), 10.0, [100, 100])
        assert space.scores((0, 0)) == (0.0, 0.0)
        assert space.scores((1, 3)) == (5.0, 15.0)
        assert space.qscore((1, 3)) == 20.0  # L1 default

    def test_weighted_qscore(self):
        space = RefinedSpace(
            make_query(2, weights=[2.0, 1.0]), 10.0, [100, 100]
        )
        assert space.qscore((1, 1)) == 15.0

    def test_linf_qscore(self):
        space = RefinedSpace(make_query(2), 10.0, [100, 100], norm=LInfNorm())
        assert space.qscore((1, 3)) == 15.0

    def test_paper_figure3_example(self):
        """Q3' with PScore (0, 20) is grid point (0, 4) at step 5."""
        space = RefinedSpace(make_query(2), gamma=10.0, max_scores=[100, 100])
        assert space.scores((0, 4)) == (0.0, 20.0)

    def test_intervals_at(self):
        space = RefinedSpace(make_query(2), 10.0, [100, 100])
        intervals = space.intervals_at((0, 2))
        assert intervals[0] == Interval(0, 50)
        assert intervals[1] == Interval(0, 55)  # +10% of width 50

    def test_cell_ranges(self):
        space = RefinedSpace(make_query(2), 10.0, [100, 100])
        ranges = space.cell_ranges((0, 3))
        assert ranges[0] == (BASE_CELL_LO, 0.0)
        assert ranges[1] == (10.0, 15.0)

    def test_contains(self):
        space = RefinedSpace(make_query(2), 10.0, [20, 20])
        assert space.contains((0, 0))
        assert space.contains((4, 4))
        assert not space.contains((5, 0))
        assert not space.contains((0,))

    def test_grid_size(self):
        space = RefinedSpace(make_query(2), 10.0, [20, 10])
        assert space.grid_size == 5 * 3

    def test_describe(self):
        space = RefinedSpace(make_query(2), 10.0, [100, 100])
        text = space.describe((0, 2))
        assert "t.c0" in text and "t.c1" in text
