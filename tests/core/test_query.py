"""Unit tests for the ACQ query model."""

import pytest

from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.interval import Interval
from repro.core.predicate import Direction, JoinPredicate, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.engine.expression import col
from repro.exceptions import QueryModelError


def _pred(name="p", table="t", refinable=True):
    return SelectPredicate(
        name=name,
        expr=col(f"{table}.x"),
        interval=Interval(0, 10),
        direction=Direction.UPPER,
        refinable=refinable,
    )


def _count(target=100.0, op=ConstraintOp.EQ):
    return AggregateConstraint(
        AggregateSpec(get_aggregate("COUNT")), op, target
    )


class TestConstraintOp:
    def test_parse(self):
        assert ConstraintOp.parse(">=") is ConstraintOp.GE
        with pytest.raises(QueryModelError):
            ConstraintOp.parse("!=")

    def test_expansion_direction(self):
        assert ConstraintOp.EQ.is_expansion
        assert ConstraintOp.GT.is_expansion
        assert not ConstraintOp.LE.is_expansion


class TestAggregateConstraint:
    def test_describe(self):
        assert _count(1000).describe() == "COUNT(*) = 1000"

    def test_negative_target_rejected(self):
        """The paper's grammar: X is a positive number."""
        with pytest.raises(QueryModelError):
            _count(-5)


class TestQueryValidation:
    def test_basic(self):
        query = Query.build("q", ("t",), [_pred()], _count())
        assert query.dimensionality == 1
        assert query.weights == (1.0,)

    def test_needs_table(self):
        with pytest.raises(QueryModelError):
            Query.build("q", (), [_pred()], _count())

    def test_duplicate_tables_rejected(self):
        with pytest.raises(QueryModelError):
            Query.build("q", ("t", "t"), [_pred()], _count())

    def test_duplicate_predicate_names_rejected(self):
        with pytest.raises(QueryModelError):
            Query.build("q", ("t",), [_pred(), _pred()], _count())

    def test_unknown_table_in_predicate(self):
        with pytest.raises(QueryModelError, match="references table"):
            Query.build("q", ("t",), [_pred(table="other")], _count())

    def test_join_tables_checked(self):
        join = JoinPredicate(name="j", left=col("a.x"), right=col("b.x"))
        with pytest.raises(QueryModelError):
            Query.build("q", ("a",), [join], _count())


class TestViews:
    def test_refinable_vs_fixed(self):
        query = Query.build(
            "q",
            ("t",),
            [_pred("a"), _pred("b", refinable=False), _pred("c")],
            _count(),
        )
        assert [p.name for p in query.refinable_predicates] == ["a", "c"]
        assert [p.name for p in query.fixed_predicates] == ["b"]
        assert query.dimensionality == 2

    def test_kind_views(self):
        join = JoinPredicate(name="j", left=col("t.x"), right=col("u.x"))
        query = Query.build("q", ("t", "u"), [_pred(), join], _count())
        assert len(query.join_predicates) == 1
        assert len(query.select_predicates) == 1
        assert len(query.categorical_predicates) == 0

    def test_with_constraint(self):
        query = Query.build("q", ("t",), [_pred()], _count(100))
        updated = query.with_constraint(_count(500))
        assert updated.constraint.target == 500
        assert query.constraint.target == 100  # original untouched

    def test_describe_mentions_norefine(self):
        query = Query.build(
            "q", ("t",), [_pred("a", refinable=False)], _count()
        )
        assert "NOREFINE" in query.describe()
        assert "COUNT(*) = 100" in query.describe()
