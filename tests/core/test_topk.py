"""Top-k alternative refinements (``AcquireConfig.top_k``).

The contract: ``run`` with ``top_k=k`` keeps exploring until the k
best answer layers are complete, ``result.top(k)`` is score-monotone,
and its first element is bit-identical to the ``top_k=1`` answer —
top-k is a pure extension of the paper's stopping rule, never a
different search.
"""

from __future__ import annotations

import pytest

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.query import ConstraintOp
from repro.engine.memory_backend import MemoryBackend
from repro.exceptions import QueryModelError

from tests.conftest import count_query


def _run(db, query, **overrides):
    defaults = dict(gamma=20.0, delta=0.05, repartition_iterations=0)
    defaults.update(overrides)
    return Acquire(MemoryBackend(db)).run(query, AcquireConfig(**defaults))


class TestExpansionTopK:
    def test_top_k_returns_k_ranked_answers(self, small_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, 150.0,
                            ConstraintOp.GE)
        result = _run(small_db, query, top_k=3)
        ranked = result.top(3)
        assert len(ranked) == 3
        assert result.stats.top_k == 3

    def test_ranking_is_score_monotone(self, small_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, 150.0,
                            ConstraintOp.GE)
        result = _run(small_db, query, top_k=4)
        qscores = [answer.qscore for answer in result.top(4)]
        assert qscores == sorted(qscores)

    def test_first_element_equals_single_answer_result(self, small_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, 150.0,
                            ConstraintOp.GE)
        single = _run(small_db, query, top_k=1)
        ranked = _run(small_db, query, top_k=4)
        assert ranked.answers[0].qscore == single.answers[0].qscore
        assert ranked.answers[0].pscores == single.answers[0].pscores
        assert ranked.answers[0].error == single.answers[0].error

    def test_k1_reproduces_default_run(self, small_db):
        query = count_query("data", {"x": 40.0}, 280.0, ConstraintOp.GE)
        default = _run(small_db, query)
        explicit = _run(small_db, query, top_k=1)
        assert [a.pscores for a in default.answers] == [
            a.pscores for a in explicit.answers
        ]

    def test_higher_k_explores_at_least_as_much(self, small_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, 150.0,
                            ConstraintOp.GE)
        single = _run(small_db, query, top_k=1)
        ranked = _run(small_db, query, top_k=3)
        assert (
            ranked.stats.grid_queries_examined
            >= single.stats.grid_queries_examined
        )
        assert len(ranked.answers) >= len(single.answers)

    def test_eq_constraint_top_k(self, small_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, 170.0,
                            ConstraintOp.EQ)
        result = _run(small_db, query, top_k=2)
        if result.satisfied:
            qscores = [answer.qscore for answer in result.top(2)]
            assert qscores == sorted(qscores)


class TestContractionTopK:
    def test_top_k_ranked_and_monotone(self, small_db):
        query = count_query("data", {"x": 60.0}, 100.0, ConstraintOp.LE)
        result = _run(small_db, query, top_k=3)
        assert result.satisfied
        ranked = result.top(3)
        assert len(ranked) >= 1
        qscores = [answer.qscore for answer in ranked]
        assert qscores == sorted(qscores)

    def test_first_element_equals_single_answer_result(self, small_db):
        query = count_query("data", {"x": 60.0}, 100.0, ConstraintOp.LE)
        single = _run(small_db, query, top_k=1)
        ranked = _run(small_db, query, top_k=3)
        assert ranked.answers[0].qscore == single.answers[0].qscore
        assert ranked.answers[0].pscores == single.answers[0].pscores


class TestValidation:
    def test_config_rejects_nonpositive_top_k(self):
        with pytest.raises(QueryModelError):
            AcquireConfig(top_k=0)

    def test_result_top_rejects_nonpositive_k(self, small_db):
        query = count_query("data", {"x": 40.0}, 280.0, ConstraintOp.GE)
        result = _run(small_db, query)
        with pytest.raises(QueryModelError):
            result.top(0)

    def test_result_top_defaults_to_search_depth(self, small_db):
        query = count_query("data", {"x": 40.0, "y": 40.0}, 150.0,
                            ConstraintOp.GE)
        result = _run(small_db, query, top_k=2)
        assert result.top() == result.answers[:2]
