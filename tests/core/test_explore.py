"""Property tests for the Explore phase (paper section 5).

The central invariants:

* incremental aggregate computation (Algorithm 3) over the cell /
  pillar / wall / block recurrences equals brute-force evaluation of
  the full refined query, for every grid point and every OSP
  aggregate;
* each cell is executed at most once regardless of how many queries
  contain it (the paper's work-sharing guarantee).
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.explore import Explorer
from repro.core.expand import LpBestFirstTraversal
from repro.core.interval import Interval
from repro.core.predicate import Direction, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.core.refined_space import RefinedSpace
from repro.engine.catalog import Database
from repro.engine.expression import col
from repro.engine.memory_backend import MemoryBackend
from repro.exceptions import SearchError


def _database(values: np.ndarray) -> Database:
    database = Database()
    columns = {f"c{i}": values[:, i] for i in range(values.shape[1])}
    columns["v"] = np.arange(values.shape[0], dtype=np.float64) * 3.0 + 1.0
    database.create_table("t", columns)
    return database


def _query(d: int, aggregate: str, bound: float = 30.0) -> Query:
    predicates = [
        SelectPredicate(
            name=f"p{i}",
            expr=col(f"t.c{i}"),
            interval=Interval(0.0, bound),
            direction=Direction.UPPER,
            denominator=100.0,
        )
        for i in range(d)
    ]
    agg = get_aggregate(aggregate)
    attr = col("t.v") if agg.needs_attribute else None
    constraint = AggregateConstraint(
        AggregateSpec(agg, attr), ConstraintOp.EQ, 10.0
    )
    return Query.build("q", ("t",), predicates, constraint)


def _setup(values, d, aggregate, gamma=30.0):
    database = _database(values)
    query = _query(d, aggregate)
    layer = MemoryBackend(database)
    caps = [200.0] * d
    prepared = layer.prepare(query, caps)
    space = RefinedSpace(query, gamma, [70.0] * d)
    explorer = Explorer(
        layer, prepared, space, query.constraint.spec.aggregate
    )
    return layer, prepared, space, explorer


def _brute_force(values, d, aggregate, space, coords):
    """Aggregate of the refined query, computed directly on the data."""
    scores = space.scores(coords)
    mask = np.ones(values.shape[0], dtype=bool)
    for dim in range(d):
        hi = 30.0 + scores[dim]  # denominator 100, width bound + score
        mask &= (values[:, dim] >= 0.0) & (values[:, dim] <= hi)
    agg = get_aggregate(aggregate)
    attr = np.arange(values.shape[0], dtype=np.float64) * 3.0 + 1.0
    return agg.finalize(agg.lift(attr[mask]))


AGGS = ["COUNT", "SUM", "MIN", "MAX", "AVG"]


class TestIncrementalEqualsBruteForce:
    @pytest.mark.parametrize("aggregate", AGGS)
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_fixed_grid(self, aggregate, d):
        rng = np.random.default_rng(42 + d)
        values = rng.uniform(-10.0, 120.0, size=(300, d))
        layer, prepared, space, explorer = _setup(values, d, aggregate)
        for coords in itertools.product(range(space.max_coords[0] + 1),
                                        repeat=d):
            if not space.contains(coords):
                continue
            incremental = explorer.compute_aggregate(coords)
            direct = _brute_force(values, d, aggregate, space, coords)
            if np.isnan(direct):
                assert np.isnan(incremental)
            else:
                assert incremental == pytest.approx(direct, rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**9),
        st.sampled_from(AGGS),
        st.integers(min_value=1, max_value=3),
    )
    def test_random_data(self, seed, aggregate, d):
        rng = np.random.default_rng(seed)
        values = rng.uniform(-20.0, 150.0, size=(rng.integers(1, 120), d))
        layer, prepared, space, explorer = _setup(values, d, aggregate)
        for coords in LpBestFirstTraversal(space):
            incremental = explorer.compute_aggregate(coords)
            direct = _brute_force(values, d, aggregate, space, coords)
            if np.isnan(direct):
                assert np.isnan(incremental)
            else:
                assert incremental == pytest.approx(
                    direct, rel=1e-9, abs=1e-9
                )


class TestWorkSharing:
    def test_each_cell_executed_at_most_once(self):
        """The paper's guarantee: a query region is never re-executed."""
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 120.0, size=(500, 2))
        layer, prepared, space, explorer = _setup(values, 2, "COUNT")
        coords_list = list(LpBestFirstTraversal(space))
        for coords in coords_list:
            explorer.compute_aggregate(coords)
        assert explorer.cells_executed == len(coords_list)
        assert layer.stats.cell_queries == len(coords_list)
        # Re-computing anything issues no further queries.
        for coords in coords_list[:10]:
            explorer.compute_aggregate(coords)
        assert layer.stats.cell_queries == len(coords_list)

    def test_out_of_order_access_rejected(self):
        """Theorem 3's precondition is enforced, not assumed."""
        rng = np.random.default_rng(1)
        values = rng.uniform(0.0, 120.0, size=(50, 2))
        layer, prepared, space, explorer = _setup(values, 2, "COUNT")
        with pytest.raises(SearchError, match="containment order"):
            explorer.compute_aggregate((2, 2))


class TestBitmapIndexIntegration:
    def test_skipped_cells_still_correct(self):
        """Section 7.4: consulting the bitmap index changes cost, never
        results."""
        rng = np.random.default_rng(7)
        # Clustered data leaves many empty cells.
        values = np.concatenate(
            [
                rng.uniform(0.0, 20.0, size=(200, 2)),
                rng.uniform(90.0, 100.0, size=(200, 2)),
            ]
        )
        database = _database(values)
        query = _query(2, "COUNT")
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [200.0, 200.0])
        space = RefinedSpace(query, 30.0, [70.0, 70.0])
        index = layer.build_bitmap_index(prepared, space)
        plain = Explorer(layer, prepared, space, query.constraint.spec.aggregate)
        indexed = Explorer(
            layer,
            prepared,
            space,
            query.constraint.spec.aggregate,
            bitmap_index=index,
        )
        for coords in LpBestFirstTraversal(space):
            assert indexed.compute_aggregate(coords) == plain.compute_aggregate(
                coords
            )
        assert indexed.cells_skipped > 0
        assert (
            indexed.cells_executed + indexed.cells_skipped
            == plain.cells_executed
        )
