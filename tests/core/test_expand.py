"""Property tests for the Expand phase (paper Theorems 2 and 3)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expand import (
    LInfLayerTraversal,
    LpBestFirstTraversal,
    make_traversal,
)
from repro.core.refined_space import RefinedSpace
from repro.core.scoring import LInfNorm, LpNorm
from repro.exceptions import SearchError
from tests.core.test_refined_space import make_query


def _space(d, max_coord, norm=None, weights=None, step=None):
    query = make_query(d, weights=weights)
    return RefinedSpace(
        query,
        gamma=10.0,
        max_scores=[max_coord * (10.0 / d if step is None else step)] * d,
        norm=norm,
        step=step,
    )


def _contains(inner, outer):
    return all(a <= b for a, b in zip(inner, outer))


class TestLpBestFirst:
    def test_visits_entire_grid_once(self):
        space = _space(2, 4)
        visited = list(LpBestFirstTraversal(space))
        expected = set(itertools.product(range(5), repeat=2))
        assert len(visited) == len(expected)
        assert set(visited) == expected

    def test_starts_at_origin(self):
        space = _space(3, 2)
        assert next(iter(LpBestFirstTraversal(space))) == (0, 0, 0)

    @pytest.mark.parametrize("norm", [LpNorm(1), LpNorm(2), LInfNorm()])
    def test_theorem2_nondecreasing_qscore(self, norm):
        space = _space(3, 3, norm=norm)
        qscores = [
            space.qscore(coords) for coords in LpBestFirstTraversal(space)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(qscores, qscores[1:]))

    @pytest.mark.parametrize("norm", [LpNorm(1), LpNorm(2), LInfNorm()])
    def test_theorem3_containment_order(self, norm):
        """Every query is generated after all queries it contains."""
        space = _space(3, 3, norm=norm)
        seen: set = set()
        for coords in LpBestFirstTraversal(space):
            for dim in range(space.d):
                if coords[dim] > 0:
                    predecessor = (
                        coords[:dim] + (coords[dim] - 1,) + coords[dim + 1 :]
                    )
                    assert predecessor in seen, (
                        f"{coords} visited before contained {predecessor}"
                    )
            seen.add(coords)

    def test_weighted_norm_ordering(self):
        """Section 7.1 weights: cheaper dimensions expand first."""
        space = _space(2, 4, weights=[5.0, 1.0])
        visited = list(LpBestFirstTraversal(space))
        # The first non-origin query must expand the cheap dimension.
        assert visited[1] == (0, 1)

    def test_respects_max_coords(self):
        query = make_query(2)
        space = RefinedSpace(query, 10.0, [5.0, 15.0])  # caps 1 and 3
        visited = set(LpBestFirstTraversal(space))
        assert max(coords[0] for coords in visited) == 1
        assert max(coords[1] for coords in visited) == 3


class TestLInfLayer:
    def test_requires_linf_norm(self):
        with pytest.raises(SearchError):
            LInfLayerTraversal(_space(2, 3))

    def test_matches_best_first_per_layer(self):
        """Algorithm 2 and the best-first search agree layer by layer."""
        space = _space(3, 3, norm=LInfNorm())
        by_layers = list(LInfLayerTraversal(space))
        by_best_first = list(LpBestFirstTraversal(space))
        assert set(by_layers) == set(by_best_first)

        def layer_of(coords):
            return max(coords) if coords else 0

        layers_a = [layer_of(c) for c in by_layers]
        assert layers_a == sorted(layers_a)

    def test_theorem3_containment_order(self):
        space = _space(3, 3, norm=LInfNorm())
        seen: set = set()
        for coords in LInfLayerTraversal(space):
            for dim in range(space.d):
                if coords[dim] > 0:
                    predecessor = (
                        coords[:dim] + (coords[dim] - 1,) + coords[dim + 1 :]
                    )
                    assert predecessor in seen
            seen.add(coords)

    def test_ragged_max_coords(self):
        query = make_query(2)
        space = RefinedSpace(query, 10.0, [5.0, 25.0], norm=LInfNorm())
        visited = list(LInfLayerTraversal(space))
        assert set(visited) == set(
            itertools.product(range(2), range(6))
        )


class TestMakeTraversal:
    def test_auto_picks_by_norm(self):
        assert isinstance(
            make_traversal(_space(2, 2)), LpBestFirstTraversal
        )
        assert isinstance(
            make_traversal(_space(2, 2, norm=LInfNorm())), LInfLayerTraversal
        )

    def test_explicit_kinds(self):
        space = _space(2, 2)
        assert isinstance(make_traversal(space, "lp"), LpBestFirstTraversal)
        with pytest.raises(SearchError):
            make_traversal(space, "bogus")


class TestTraversalProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=4),
        st.sampled_from([1.0, 2.0, float("inf")]),
    )
    def test_complete_and_ordered(self, d, max_coord, p):
        norm = LInfNorm() if p == float("inf") else LpNorm(p)
        space = _space(d, max_coord, norm=norm)
        visited = list(make_traversal(space))
        assert len(visited) == (max_coord + 1) ** d
        assert len(set(visited)) == len(visited)
        qscores = [space.qscore(c) for c in visited]
        assert all(a <= b + 1e-9 for a, b in zip(qscores, qscores[1:]))


class TestScoredStreams:
    """The scored()/layers_scored() protocol: traversals hand their
    QScores to the driver so each grid point is scored exactly once."""

    @pytest.mark.parametrize("norm", [LpNorm(1), LpNorm(2), LInfNorm()])
    def test_scored_matches_iteration(self, norm):
        space = _space(3, 3, norm=norm)
        scored = list(make_traversal(space).scored())
        assert [c for c, _ in scored] == list(make_traversal(space))
        assert all(q == space.qscore(c) for c, q in scored)

    @pytest.mark.parametrize("kind", ["lp", "linf"])
    def test_layers_scored_partitions_the_stream(self, kind):
        space = _space(2, 4, norm=LInfNorm() if kind == "linf" else None)
        layers = list(make_traversal(space, kind).layers_scored())
        flat = [pair for layer in layers for pair in layer]
        assert flat == list(make_traversal(space, kind).scored())
        for layer in layers:
            assert len({round(q, 9) for _, q in layer}) == 1
        boundaries = [round(layer[0][1], 9) for layer in layers]
        assert len(set(boundaries)) == len(boundaries)

    def test_layers_drop_the_scores(self):
        space = _space(2, 3)
        traversal = make_traversal(space)
        plain = list(make_traversal(space).layers())
        scored = list(traversal.layers_scored())
        assert plain == [[c for c, _ in layer] for layer in scored]

    @pytest.mark.parametrize("kind", ["lp", "linf"])
    def test_each_point_scored_exactly_once(self, kind):
        space = _space(2, 4, norm=LInfNorm() if kind == "linf" else None)
        counts: dict = {}
        original = space.qscore

        def counting_qscore(coords):
            key = tuple(coords)
            counts[key] = counts.get(key, 0) + 1
            return original(coords)

        space.qscore = counting_qscore  # type: ignore[method-assign]
        consumed = [
            pair
            for layer in make_traversal(space, kind).layers_scored()
            for pair in layer
        ]
        assert len(consumed) == space.grid_size
        assert set(counts.values()) == {1}
