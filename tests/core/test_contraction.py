"""Tests for the contraction extension (paper section 7.2)."""

import numpy as np
import pytest

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.contraction import ContractionSpace
from repro.core.interval import Interval
from repro.core.predicate import Direction, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.engine.catalog import Database
from repro.engine.expression import col
from repro.engine.memory_backend import MemoryBackend
from tests.conftest import count_query


@pytest.fixture(scope="module")
def wide_db() -> Database:
    rng = np.random.default_rng(9)
    database = Database()
    database.create_table(
        "data",
        {
            "x": rng.uniform(0, 100, 3000),
            "y": rng.uniform(0, 100, 3000),
        },
    )
    return database


class TestContractionSpace:
    def test_max_coords_from_shrink_caps(self, wide_db):
        query = count_query("data", {"x": 80.0, "y": 80.0}, target=10)
        space = ContractionSpace(
            query, gamma=10.0, norm=None or __import__(
                "repro.core.scoring", fromlist=["LpNorm"]
            ).LpNorm(1),
        )
        # Width 80 over denominator 100 -> shrink cap 80; step 5.
        assert space.step == 5.0
        assert space.max_coords == (16, 16)
        assert space.scores((2, 0)) == (-10.0, 0.0)
        assert space.qscore((2, 0)) == 10.0


class TestContractQuery:
    def test_le_constraint_shrinks(self, wide_db):
        """Too many results: shrink until COUNT <= target."""
        query = count_query(
            "data", {"x": 80.0, "y": 80.0}, target=500,
            op=ConstraintOp.LE,
        )
        result = Acquire(MemoryBackend(wide_db)).run(
            query, AcquireConfig(gamma=10, delta=0.05)
        )
        assert result.satisfied
        best = result.best
        assert best.aggregate_value <= 500 * 1.05
        # Contraction is encoded as negative PScores.
        assert any(score < 0 for score in best.pscores)
        # Refined intervals shrank, never grew.
        for interval, predicate in zip(
            best.intervals, query.refinable_predicates
        ):
            assert interval.hi <= predicate.interval.hi + 1e-9
            assert interval.lo >= predicate.interval.lo - 1e-9

    def test_eq_overshoot_delegates_to_contraction(self, wide_db):
        """An equality ACQ whose original query already overshoots is
        handed to the contraction extension by the driver."""
        query = count_query("data", {"x": 80.0, "y": 80.0}, target=400)
        result = Acquire(MemoryBackend(wide_db)).run(
            query, AcquireConfig(gamma=10, delta=0.05)
        )
        assert result.original_value > 400
        assert result.satisfied
        assert result.best.aggregate_value == pytest.approx(400, rel=0.06)

    def test_minimal_shrinkage_preferred(self, wide_db):
        """Answers minimize refinement w.r.t. Q (paper 7.2)."""
        query = count_query(
            "data", {"x": 80.0, "y": 80.0}, target=1500,
            op=ConstraintOp.LE,
        )
        config = AcquireConfig(gamma=10, delta=0.05)
        result = Acquire(MemoryBackend(wide_db)).run(query, config)
        assert result.satisfied
        # Brute-force sweep of balanced/unbalanced shrinkage vectors.
        layer = MemoryBackend(wide_db)
        prepared = layer.prepare(query, [0.0, 0.0])
        best = float("inf")
        for sx in np.arange(0, 80, 2.5):
            for sy in np.arange(0, 80, 2.5):
                count = layer.execute_box(prepared, (-sx, -sy))[0]
                if count <= 1500 * 1.05:
                    best = min(best, sx + sy)
        assert result.best.qscore <= best + config.gamma + 1e-6

    def test_already_satisfied_le(self, wide_db):
        query = count_query(
            "data", {"x": 20.0, "y": 20.0}, target=100_000,
            op=ConstraintOp.LE,
        )
        result = Acquire(MemoryBackend(wide_db)).run(
            query, AcquireConfig(gamma=10, delta=0.05)
        )
        assert result.satisfied
        assert result.best.qscore == 0.0

    def test_repartition_on_overshrink(self, wide_db):
        """Coarse shrink steps skip past the target; bisection between
        grid points recovers it."""
        query = count_query("data", {"x": 80.0, "y": 80.0}, target=1700)
        config = AcquireConfig(gamma=120.0, delta=0.005,
                               repartition_iterations=16)
        result = Acquire(MemoryBackend(wide_db)).run(query, config)
        assert result.satisfied or result.best.error < 0.02

    def test_sum_contraction(self, wide_db):
        predicates = [
            SelectPredicate(
                name="px",
                expr=col("data.x"),
                interval=Interval(0, 80),
                direction=Direction.UPPER,
                denominator=100.0,
            )
        ]
        constraint = AggregateConstraint(
            AggregateSpec(get_aggregate("SUM"), col("data.y")),
            ConstraintOp.LE,
            40_000.0,
        )
        query = Query.build("qs", ("data",), predicates, constraint)
        result = Acquire(MemoryBackend(wide_db)).run(
            query, AcquireConfig(gamma=10, delta=0.05)
        )
        assert result.satisfied
        assert result.best.aggregate_value <= 40_000 * 1.05
