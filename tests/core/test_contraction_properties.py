"""Hypothesis property tests for the contraction extension (7.2)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.query import ConstraintOp
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from tests.conftest import count_query


def _database(seed: int, n: int) -> Database:
    rng = np.random.default_rng(seed)
    database = Database()
    database.create_table(
        "data",
        {"x": rng.uniform(0, 100, n), "y": rng.uniform(0, 100, n)},
    )
    return database


class TestContractionProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.05, max_value=0.8),
    )
    def test_le_answers_meet_cap_and_only_shrink(self, seed, target_frac):
        database = _database(seed, 800)
        layer = MemoryBackend(database)
        prepared_probe = MemoryBackend(database)
        query = count_query("data", {"x": 80.0, "y": 80.0}, target=1)
        original = prepared_probe.execute_box(
            prepared_probe.prepare(query, [0.0, 0.0]), (0.0, 0.0)
        )[0]
        target = max(original * target_frac, 1.0)
        query = count_query(
            "data", {"x": 80.0, "y": 80.0}, target=target,
            op=ConstraintOp.LE,
        )
        result = Acquire(layer).run(
            query, AcquireConfig(gamma=10, delta=0.05)
        )
        best = result.best
        assert best is not None
        if result.satisfied:
            assert best.aggregate_value <= target * 1.05 + 1e-9
        # Contraction never expands: every interval inside the original.
        for interval, predicate in zip(
            best.intervals, query.refinable_predicates
        ):
            assert interval.lo >= predicate.interval.lo - 1e-9
            assert interval.hi <= predicate.interval.hi + 1e-9
        # All PScores are contraction-signed.
        assert all(score <= 1e-9 for score in best.pscores)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_contraction_monotone_in_target(self, seed):
        """A smaller cap never needs less shrinkage."""
        database = _database(seed, 800)
        qscores = []
        for fraction in (0.7, 0.4, 0.2):
            query = count_query("data", {"x": 80.0, "y": 80.0}, target=1)
            probe = MemoryBackend(database)
            original = probe.execute_box(
                probe.prepare(query, [0.0, 0.0]), (0.0, 0.0)
            )[0]
            capped = count_query(
                "data",
                {"x": 80.0, "y": 80.0},
                target=max(original * fraction, 1.0),
                op=ConstraintOp.LE,
            )
            result = Acquire(MemoryBackend(database)).run(
                capped, AcquireConfig(gamma=10, delta=0.05)
            )
            assert result.satisfied
            qscores.append(result.best.qscore)
        assert qscores[0] <= qscores[1] + 1e-9
        assert qscores[1] <= qscores[2] + 1e-9
