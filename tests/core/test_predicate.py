"""Unit and property tests for predicates (paper section 2.2-2.4)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import Interval
from repro.core.ontology import OntologyTree
from repro.core.predicate import (
    CategoricalPredicate,
    Direction,
    JoinPredicate,
    SelectPredicate,
)
from repro.engine.expression import col
from repro.exceptions import NotRefinableError, QueryModelError


def upper_pred(lo=0.0, hi=50.0, den=None, refinable=True):
    return SelectPredicate(
        name="p",
        expr=col("t.y"),
        interval=Interval(lo, hi),
        direction=Direction.UPPER,
        denominator=den,
        refinable=refinable,
    )


class TestSelectPredicate:
    def test_paper_decomposition(self):
        """(B.y < 50) with min(B.y)=0 -> P_F = B.y, P_I = (0, 50)."""
        predicate = upper_pred()
        assert predicate.interval == Interval(0, 50)
        assert predicate.effective_denominator == 50.0

    def test_upper_expansion(self):
        predicate = upper_pred()
        # PScore 20 with denominator 50 -> +10 units (paper Example 3).
        assert predicate.interval_at(20.0) == Interval(0, 60)

    def test_lower_expansion(self):
        predicate = SelectPredicate(
            name="p",
            expr=col("t.y"),
            interval=Interval(10, 100),
            direction=Direction.LOWER,
        )
        assert predicate.interval_at(10.0) == Interval(1.0, 100)

    def test_point_expansion_symmetric(self):
        predicate = SelectPredicate(
            name="p",
            expr=col("t.y"),
            interval=Interval.point(10),
            direction=Direction.POINT,
        )
        # Point predicates use the denominator-100 convention.
        assert predicate.interval_at(5.0) == Interval(5.0, 15.0)

    def test_point_requires_point_interval(self):
        with pytest.raises(QueryModelError):
            SelectPredicate(
                name="p",
                expr=col("t.y"),
                interval=Interval(0, 1),
                direction=Direction.POINT,
            )

    def test_contraction_clamps_at_point(self):
        predicate = upper_pred()
        assert predicate.interval_at(-100.0) == Interval(0, 0)
        assert predicate.interval_at(-1000.0) == Interval(0, 0)
        assert predicate.max_shrink_score == 100.0

    def test_norefine_blocks_nonzero_scores(self):
        predicate = upper_pred(refinable=False)
        assert predicate.interval_at(0.0) == Interval(0, 50)
        with pytest.raises(NotRefinableError):
            predicate.interval_at(1.0)
        with pytest.raises(NotRefinableError):
            predicate.interval_at(-1.0)

    def test_scores_of_values_signed(self):
        predicate = upper_pred()
        scores = predicate.scores_of_values(np.array([-1.0, 0.0, 25.0, 50.0, 60.0]))
        assert scores[0] == math.inf  # below the frozen side
        assert scores[1] == pytest.approx(-100.0)  # survives full shrink
        assert scores[2] == pytest.approx(-50.0)
        assert scores[3] == pytest.approx(0.0)
        assert scores[4] == pytest.approx(20.0)

    def test_norefine_scores_infinite_outside(self):
        predicate = upper_pred(refinable=False)
        scores = predicate.scores_of_values(np.array([25.0, 60.0]))
        assert scores[0] < 0
        assert scores[1] == math.inf

    def test_max_useful_score(self):
        predicate = upper_pred()
        assert predicate.max_useful_score(Interval(0, 100)) == pytest.approx(100.0)
        assert predicate.max_useful_score(Interval(0, 40)) == 0.0

    def test_weight_and_limit_validation(self):
        with pytest.raises(QueryModelError):
            upper_pred().with_weight(0.0)
        with pytest.raises(QueryModelError):
            upper_pred().with_limit(-1.0)

    def test_with_norefine_copy(self):
        pinned = upper_pred().with_norefine()
        assert not pinned.refinable
        assert upper_pred().refinable

    def test_sql_condition(self):
        predicate = upper_pred()
        assert predicate.sql_condition(0.0) == "t.y >= 0.0 AND t.y <= 50.0"
        assert "60.0" in predicate.sql_condition(20.0)


class TestJoinPredicate:
    def join(self, refinable=True, tolerance=0.0):
        return JoinPredicate(
            name="j",
            left=col("a.x"),
            right=col("b.x"),
            refinable=refinable,
            tolerance=tolerance,
        )

    def test_equi_join_denominator_100(self):
        """Paper 2.3: equality join predicates use denominator 100."""
        predicate = self.join()
        assert predicate.is_equi
        assert predicate.denominator == 100.0

    def test_band_refinement_paper_2_4(self):
        """PScore 10 -> ||A.x - B.x|| <= 10 (paper section 2.4)."""
        assert self.join().band_at(10.0) == 10.0

    def test_scores_of_deltas(self):
        scores = self.join().scores_of_values(np.array([0.0, 5.0]))
        assert scores[0] == 0.0
        assert scores[1] == pytest.approx(5.0)

    def test_tolerance_shrink(self):
        predicate = self.join(tolerance=4.0)
        assert predicate.band_at(-2.0) == 2.0
        assert predicate.band_at(-100.0) == 0.0  # clamp
        assert predicate.max_shrink_score == pytest.approx(4.0)

    def test_norefine_join(self):
        predicate = self.join(refinable=False)
        with pytest.raises(NotRefinableError):
            predicate.band_at(1.0)
        scores = predicate.scores_of_values(np.array([0.0, 1.0]))
        assert scores[0] == 0.0
        assert scores[1] == math.inf

    def test_sql(self):
        assert self.join().sql_condition(0.0) == "a.x = b.x"
        assert self.join().sql_condition(10.0) == "ABS(a.x - b.x) <= 10.0"

    def test_negative_tolerance_rejected(self):
        with pytest.raises(QueryModelError):
            self.join(tolerance=-1.0)


class TestCategoricalPredicate:
    def tree(self):
        return OntologyTree.from_mapping(
            {
                "ROOT": ["US", "EU"],
                "US": ["Boston", "NewYork"],
                "EU": ["Paris", "Berlin"],
            }
        )

    def predicate(self, accepted=("Boston",), refinable=True):
        return CategoricalPredicate(
            name="c",
            column=col("t.city"),
            accepted=frozenset(accepted),
            ontology=self.tree(),
            refinable=refinable,
        )

    def test_level_scale(self):
        predicate = self.predicate()
        assert predicate.level_scale == pytest.approx(50.0)  # depth 2

    def test_expansion_levels(self):
        predicate = self.predicate()
        assert predicate.accepted_at(0.0) == frozenset({"Boston"})
        level1 = predicate.accepted_at(50.0)
        assert {"Boston", "NewYork", "US"} <= level1
        assert "Paris" not in level1
        level2 = predicate.accepted_at(100.0)
        assert "Paris" in level2

    def test_scores_of_values(self):
        predicate = self.predicate()
        scores = predicate.scores_of_values(
            np.array(["Boston", "NewYork", "Paris", "Mars"], dtype=object)
        )
        assert scores[0] == 0.0
        assert scores[1] == pytest.approx(50.0)
        assert scores[2] == pytest.approx(100.0)
        assert scores[3] == math.inf

    def test_sql_annulus_fresh_values_only(self):
        predicate = self.predicate()
        base = predicate.sql_annulus(-1.0, 0.0)
        assert "'Boston'" in base and "NewYork" not in base
        ring = predicate.sql_annulus(0.0, 50.0)
        assert "'NewYork'" in ring and "'Boston'" not in ring

    def test_empty_accepted_rejected(self):
        with pytest.raises(QueryModelError):
            self.predicate(accepted=())

    def test_no_shrink(self):
        assert self.predicate().max_shrink_score == 0.0
        assert self.predicate().level_at(-10.0) == 0


class TestScoreIntervalConsistency:
    """scores_of_values and interval_at must agree: a value is inside
    interval_at(s) iff its score <= s."""

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=-200, max_value=300, allow_nan=False),
        st.floats(min_value=-99, max_value=300, allow_nan=False),
        st.sampled_from([Direction.UPPER, Direction.LOWER]),
    )
    def test_select_consistency(self, value, score, direction):
        predicate = SelectPredicate(
            name="p",
            expr=col("t.y"),
            interval=Interval(0, 50),
            direction=direction,
        )
        tuple_score = float(predicate.scores_of_values(np.array([value]))[0])
        admitted = predicate.interval_at(score).contains(value)
        if math.isinf(tuple_score):
            assert not admitted or score < -99.9
        elif tuple_score <= score:
            assert admitted
        else:
            # A score gap below one ulp of the endpoint vanishes in the
            # interval arithmetic (50.0 + -1e-38 == 50.0), so the value
            # may still be admitted when both scores map to the same
            # interval.
            assert not admitted or (
                predicate.interval_at(score)
                == predicate.interval_at(tuple_score)
            )

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=0, max_value=500, allow_nan=False),
        st.floats(min_value=0, max_value=400, allow_nan=False),
    )
    def test_join_consistency(self, delta, score):
        predicate = JoinPredicate(
            name="j", left=col("a.x"), right=col("b.x")
        )
        tuple_score = float(predicate.scores_of_values(np.array([delta]))[0])
        if abs(tuple_score - score) < 1e-9:
            return  # exact float boundary: either bucketing is fine
        admitted = delta <= predicate.band_at(score)
        assert admitted == (tuple_score <= score)
