"""Tests for sub-aggregate storage backends (in-memory and paged)."""

import numpy as np
import pytest

from repro.core.expand import LpBestFirstTraversal
from repro.core.explore import Explorer, SubAggregateStore
from repro.core.refined_space import RefinedSpace
from repro.core.store import (
    PagedSubAggregateStore,
    _decode_states,
    _encode_states,
)
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.exceptions import SearchError
from tests.conftest import count_query


class TestEncoding:
    def test_round_trip(self):
        states = [(1.0, 2.0), (3.5, -4.5), (0.0, 0.0)]
        assert _decode_states(_encode_states(states)) == states

    def test_single_part_states(self):
        states = [(7.0,), (8.0,)]
        assert _decode_states(_encode_states(states)) == states


class TestPagedStore:
    def test_put_get_contains_len(self):
        with PagedSubAggregateStore(cache_size=2) as store:
            store.put((0, 0), [(1.0,), (2.0,)])
            store.put((0, 1), [(3.0,), (4.0,)])
            assert (0, 0) in store
            assert (9, 9) not in store
            assert len(store) == 2
            assert store.get((0, 1)) == [(3.0,), (4.0,)]

    def test_eviction_and_page_in(self):
        with PagedSubAggregateStore(cache_size=2, flush_size=4) as store:
            for index in range(5):
                store.put((index,), [(float(index),)])
            assert store.evictions >= 3
            # Oldest entries paged out of the cache but not lost.
            assert store.get((0,)) == [(0.0,)]
            assert store.page_ins >= 1
            assert len(store) == 5

    def test_writes_are_batched(self):
        with PagedSubAggregateStore(cache_size=8, flush_size=4) as store:
            for index in range(3):
                store.put((index,), [(float(index),)])
            assert store.flushes == 0  # still buffered
            store.put((3,), [(3.0,)])
            assert store.flushes == 1  # flush_size reached
            store.flush()
            assert store.flushes == 1  # empty buffer: no-op

    def test_unflushed_entry_survives_cache_eviction(self):
        # flush_size larger than the workload: every write stays
        # pending, and an entry evicted from the LRU cache must be
        # served from the pending buffer, not the (empty) database.
        with PagedSubAggregateStore(cache_size=1, flush_size=100) as store:
            store.put((0,), [(0.0,)])
            store.put((1,), [(1.0,)])
            assert store.get((0,)) == [(0.0,)]
            assert store.page_ins == 0

    def test_flush_on_close_persists_to_user_path(self, tmp_path):
        path = str(tmp_path / "states.sqlite")
        store = PagedSubAggregateStore(path=path, flush_size=100)
        store.put((4, 2), [(7.0,)])
        store.close()
        reopened = PagedSubAggregateStore(path=path)
        try:
            assert (4, 2) in reopened
            assert len(reopened) == 1
            assert reopened.get((4, 2)) == [(7.0,)]
        finally:
            reopened.close()

    def test_flush_size_validated(self):
        with pytest.raises(SearchError):
            PagedSubAggregateStore(flush_size=0)

    def test_missing_raises_search_error(self):
        with PagedSubAggregateStore() as store:
            with pytest.raises(SearchError, match="containment order"):
                store.get((1, 2, 3))

    def test_overwrite_does_not_grow(self):
        with PagedSubAggregateStore() as store:
            store.put((1,), [(1.0,)])
            store.put((1,), [(2.0,)])
            assert len(store) == 1
            assert store.get((1,)) == [(2.0,)]

    def test_cache_size_validated(self):
        with pytest.raises(SearchError):
            PagedSubAggregateStore(cache_size=0)

    def test_mixed_arity_states_rejected(self):
        # The page encoding packs one (count, arity) header per entry;
        # a mixed-arity list would flatten to the wrong number of slots
        # and page back in as garbage. It must be rejected up front,
        # naming the offending coordinates.
        with PagedSubAggregateStore() as store:
            with pytest.raises(SearchError, match=r"\(3, 7\)"):
                store.put((3, 7), [(1.0,), (2.0, 4.0)])
            assert (3, 7) not in store
            # Uniform arity-2 states (e.g. AVG) still round-trip.
            store.put((3, 7), [(1.0, 2.0), (3.0, 4.0)])
            store.flush()
            assert store.get((3, 7)) == [(1.0, 2.0), (3.0, 4.0)]

    def test_temp_file_removed_on_close(self):
        import os

        store = PagedSubAggregateStore()
        path = store.path
        assert os.path.exists(path)
        store.close()
        assert not os.path.exists(path)


class TestExplorerWithPagedStore:
    def test_identical_results_to_memory_store(self):
        rng = np.random.default_rng(8)
        database = Database()
        database.create_table(
            "data",
            {
                "x": rng.uniform(0, 100, 1500),
                "y": rng.uniform(0, 100, 1500),
            },
        )
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=500)
        layer = MemoryBackend(database)
        prepared = layer.prepare(query, [200.0, 200.0])
        space = RefinedSpace(query, 20.0, [70.0, 70.0])
        aggregate = query.constraint.spec.aggregate

        in_memory = Explorer(layer, prepared, space, aggregate)
        with PagedSubAggregateStore(cache_size=4, flush_size=8) as paged_store:
            paged = Explorer(
                layer, prepared, space, aggregate, store=paged_store
            )
            for coords in LpBestFirstTraversal(space):
                assert paged.compute_aggregate(
                    coords
                ) == in_memory.compute_aggregate(coords)
            # With a 4-entry cache over dozens of grid points, paging
            # actually happened.
            assert paged_store.evictions > 0
            assert paged_store.page_ins > 0


class TestInMemoryStore:
    def test_missing_raises(self):
        store = SubAggregateStore()
        with pytest.raises(SearchError, match="containment order"):
            store.get((0, 0))

    def test_len_and_contains(self):
        store = SubAggregateStore()
        store.put((1, 2), [(0.0,)])
        assert len(store) == 1
        assert (1, 2) in store
