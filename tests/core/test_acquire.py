"""End-to-end tests for the ACQUIRE driver (paper Algorithm 4)."""

import itertools
import math

import numpy as np
import pytest

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.interval import Interval
from repro.core.predicate import Direction, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.core.scoring import LInfNorm, LpNorm
from repro.engine.catalog import Database
from repro.engine.expression import col
from repro.engine.memory_backend import MemoryBackend
from repro.exceptions import QueryModelError
from tests.conftest import count_query


@pytest.fixture(scope="module")
def grid_db() -> Database:
    """Uniform 2-D data so counts are predictable."""
    rng = np.random.default_rng(123)
    database = Database()
    database.create_table(
        "data",
        {
            "x": rng.uniform(0, 100, 4000),
            "y": rng.uniform(0, 100, 4000),
            "z": rng.uniform(0, 100, 4000),
            "v": rng.uniform(0, 10, 4000),
        },
    )
    return database


class TestBasicExpansion:
    def test_finds_answer_within_delta(self, grid_db):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=1500)
        result = Acquire(MemoryBackend(grid_db)).run(
            query, AcquireConfig(gamma=10, delta=0.05)
        )
        assert result.satisfied
        best = result.best
        assert best.error <= 0.05
        assert abs(best.aggregate_value - 1500) <= 0.05 * 1500
        assert best.qscore > 0

    def test_origin_already_satisfies(self, grid_db):
        base = count_query("data", {"x": 30.0, "y": 30.0}, target=1.0)
        original = Acquire(MemoryBackend(grid_db)).run(
            base.with_constraint(
                AggregateConstraint(
                    base.constraint.spec, ConstraintOp.GE, 1.0
                )
            ),
            AcquireConfig(gamma=10, delta=0.05),
        )
        assert original.satisfied
        assert original.best.qscore == 0.0
        assert original.stats.grid_queries_examined >= 1

    def test_answers_share_minimal_layer(self, grid_db):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=1200)
        result = Acquire(MemoryBackend(grid_db)).run(
            query, AcquireConfig(gamma=10, delta=0.10)
        )
        assert result.satisfied
        grid_answers = [a for a in result.answers if a.coords is not None]
        layers = {round(a.qscore, 6) for a in grid_answers}
        assert len(layers) == 1  # Algorithm 4 finishes exactly one layer

    def test_monotone_count_nondecreasing_along_expansion(self, grid_db):
        query = count_query("data", {"x": 20.0, "y": 20.0}, target=4000)
        layer = MemoryBackend(grid_db)
        prepared = layer.prepare(query, [400.0, 400.0])
        counts = [
            layer.execute_box(prepared, (s, s))[0] for s in (0, 10, 20, 40)
        ]
        assert counts == sorted(counts)


class TestOptimality:
    def test_within_gamma_of_bruteforce_optimum(self, grid_db):
        """Definition 1(b): QScore within gamma of the optimal grid
        refinement, verified against exhaustive search."""
        gamma, delta = 10.0, 0.05
        target = 900.0
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=target)
        layer = MemoryBackend(grid_db)
        result = Acquire(layer).run(query, AcquireConfig(gamma=gamma,
                                                         delta=delta))
        assert result.satisfied

        # Exhaustive scan of a fine grid for the true optimum.
        probe_layer = MemoryBackend(grid_db)
        prepared = probe_layer.prepare(query, [400.0, 400.0])
        best = math.inf
        for sx, sy in itertools.product(np.arange(0, 80, 1.0), repeat=2):
            count = probe_layer.execute_box(prepared, (sx, sy))[0]
            if abs(count - target) <= delta * target:
                best = min(best, sx + sy)
        assert best < math.inf
        assert result.best.qscore <= best + gamma + 1e-6


class TestRepartitioning:
    def test_overshoot_triggers_repartition(self, grid_db):
        """A coarse grid overshoots; bisection inside the cell recovers
        an in-threshold answer (Algorithm 4's Repartition)."""
        query = count_query("data", {"x": 20.0, "y": 20.0}, target=200)
        config = AcquireConfig(gamma=160.0, delta=0.01,
                               repartition_iterations=16)
        result = Acquire(MemoryBackend(grid_db)).run(query, config)
        assert result.stats.repartition_probes > 0
        assert result.satisfied
        off_grid = [a for a in result.answers if a.coords is None]
        assert off_grid, "expected an answer produced by repartitioning"

    def test_repartition_disabled(self, grid_db):
        query = count_query("data", {"x": 20.0, "y": 20.0}, target=200)
        config = AcquireConfig(gamma=160.0, delta=0.01,
                               repartition_iterations=0)
        result = Acquire(MemoryBackend(grid_db)).run(query, config)
        assert result.stats.repartition_probes == 0


class TestClosestFallback:
    def test_unattainable_target_returns_closest(self, grid_db):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=100_000)
        result = Acquire(MemoryBackend(grid_db)).run(
            query, AcquireConfig(gamma=20, delta=0.01)
        )
        assert not result.satisfied
        assert result.best is not None
        assert result.best.aggregate_value <= 4000
        # Closest query is the most expanded one (monotone COUNT).
        assert result.best.error > 0.01

    def test_unattainably_tight_delta_stops_early(self, grid_db):
        """The all-overshoot layer rule keeps the search finite."""
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=1500.0001)
        result = Acquire(MemoryBackend(grid_db)).run(
            query, AcquireConfig(gamma=10, delta=1e-9)
        )
        assert not result.satisfied
        assert result.stats.grid_queries_examined < 5000


class TestNormsAndWeights:
    @pytest.mark.parametrize("norm", [LpNorm(1), LpNorm(2), LInfNorm()])
    def test_all_norms_work(self, grid_db, norm):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=1300)
        result = Acquire(MemoryBackend(grid_db)).run(
            query, AcquireConfig(gamma=10, delta=0.05, norm=norm)
        )
        assert result.satisfied

    def test_weights_steer_refinement(self, grid_db):
        """Section 7.1: a heavily weighted predicate refines less."""
        def weighted_query(wx):
            predicates = [
                SelectPredicate(
                    name="px",
                    expr=col("data.x"),
                    interval=Interval(0, 30),
                    direction=Direction.UPPER,
                    denominator=100.0,
                    weight=wx,
                ),
                SelectPredicate(
                    name="py",
                    expr=col("data.y"),
                    interval=Interval(0, 30),
                    direction=Direction.UPPER,
                    denominator=100.0,
                ),
            ]
            constraint = AggregateConstraint(
                AggregateSpec(get_aggregate("COUNT")), ConstraintOp.EQ, 1300
            )
            return Query.build("q", ("data",), predicates, constraint)

        balanced = Acquire(MemoryBackend(grid_db)).run(
            weighted_query(1.0), AcquireConfig(gamma=10, delta=0.05)
        )
        skewed = Acquire(MemoryBackend(grid_db)).run(
            weighted_query(8.0), AcquireConfig(gamma=10, delta=0.05)
        )
        assert balanced.satisfied and skewed.satisfied
        # With x expensive, the x-refinement must not exceed the
        # balanced run's.
        assert skewed.best.pscores[0] <= balanced.best.pscores[0] + 1e-9


class TestAggregates:
    def test_sum_ge(self, grid_db):
        predicates = [
            SelectPredicate(
                name="px",
                expr=col("data.x"),
                interval=Interval(0, 30),
                direction=Direction.UPPER,
                denominator=100.0,
            )
        ]
        constraint = AggregateConstraint(
            AggregateSpec(get_aggregate("SUM"), col("data.v")),
            ConstraintOp.GE,
            9000.0,
        )
        query = Query.build("qsum", ("data",), predicates, constraint)
        result = Acquire(MemoryBackend(grid_db)).run(
            query, AcquireConfig(gamma=10, delta=0.02)
        )
        assert result.satisfied
        assert result.best.aggregate_value >= 9000.0 * 0.98

    def test_max_ge(self, grid_db):
        predicates = [
            SelectPredicate(
                name="px",
                expr=col("data.x"),
                interval=Interval(0, 30),
                direction=Direction.UPPER,
                denominator=100.0,
            )
        ]
        constraint = AggregateConstraint(
            AggregateSpec(get_aggregate("MAX"), col("data.x")),
            ConstraintOp.GE,
            60.0,
        )
        query = Query.build("qmax", ("data",), predicates, constraint)
        result = Acquire(MemoryBackend(grid_db)).run(
            query, AcquireConfig(gamma=10, delta=0.01)
        )
        assert result.satisfied
        assert result.best.aggregate_value >= 60.0 * 0.99

    def test_avg_equality(self, grid_db):
        """AVG via its (SUM, COUNT) decomposition (section 2.6)."""
        predicates = [
            SelectPredicate(
                name="px",
                expr=col("data.x"),
                interval=Interval(0, 30),
                direction=Direction.UPPER,
                denominator=100.0,
            )
        ]
        constraint = AggregateConstraint(
            AggregateSpec(get_aggregate("AVG"), col("data.x")),
            ConstraintOp.EQ,
            25.0,
        )
        query = Query.build("qavg", ("data",), predicates, constraint)
        result = Acquire(MemoryBackend(grid_db)).run(
            query, AcquireConfig(gamma=10, delta=0.05)
        )
        assert result.best is not None
        assert result.best.error <= 0.05


class TestConfigValidation:
    def test_invalid_config(self):
        with pytest.raises(QueryModelError):
            AcquireConfig(gamma=0)
        with pytest.raises(QueryModelError):
            AcquireConfig(delta=-1)
        with pytest.raises(QueryModelError):
            AcquireConfig(repartition_iterations=-1)


class TestResultShape:
    def test_stats_and_summary(self, grid_db):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=1300)
        result = Acquire(MemoryBackend(grid_db)).run(
            query, AcquireConfig(gamma=10, delta=0.05)
        )
        stats = result.stats
        assert stats.grid_queries_examined > 0
        assert stats.cells_executed > 0
        assert stats.elapsed_s > 0
        assert stats.execution.queries_executed >= stats.cells_executed
        text = result.summary()
        assert "answers" in text and "QScore" in text

    def test_refined_query_describe_sql(self, grid_db):
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=1300)
        result = Acquire(MemoryBackend(grid_db)).run(
            query, AcquireConfig(gamma=10, delta=0.05)
        )
        rendered = result.best.describe()
        assert "SELECT * FROM data" in rendered
        assert "data.x" in rendered
