"""Tests for result objects and the alternatives table."""

import math

import numpy as np
import pytest

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.result import AcquireResult, SearchStats
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from tests.conftest import count_query


@pytest.fixture(scope="module")
def result():
    rng = np.random.default_rng(15)
    database = Database()
    database.create_table(
        "data",
        {"x": rng.uniform(0, 100, 2000), "y": rng.uniform(0, 100, 2000)},
    )
    query = count_query("data", {"x": 30.0, "y": 30.0}, target=600)
    return Acquire(MemoryBackend(database)).run(
        query, AcquireConfig(gamma=10, delta=0.05)
    )


class TestAcquireResult:
    def test_best_prefers_answers(self, result):
        assert result.satisfied
        assert result.best is result.answers[0]
        assert result.qscore == result.answers[0].qscore
        assert result.error == result.answers[0].error

    def test_answers_sorted_by_qscore_then_error(self, result):
        keys = [(a.qscore, a.error) for a in result.answers]
        assert keys == sorted(keys)

    def test_alternatives_table_layout(self, result):
        table = result.alternatives_table()
        lines = table.splitlines()
        assert lines[0].startswith("#")
        assert "QScore" in lines[0]
        assert "x_le" in lines[0] and "y_le" in lines[0]
        assert len(lines) == 2 + min(len(result.answers), 10)
        assert "[" in lines[2]  # intervals rendered

    def test_alternatives_table_limit(self, result):
        table = result.alternatives_table(limit=1)
        assert len(table.splitlines()) == 3

    def test_empty_result_table(self, result):
        empty = AcquireResult(
            query=result.query,
            answers=[],
            closest=None,
            original_value=0.0,
            stats=SearchStats(),
        )
        assert empty.alternatives_table() == "(no refined queries found)"
        assert not empty.satisfied
        assert empty.best is None
        assert math.isinf(empty.qscore)
        assert math.isinf(empty.error)

    def test_unsatisfied_table_shows_closest(self, result):
        unsatisfied = AcquireResult(
            query=result.query,
            answers=[],
            closest=result.answers[0],
            original_value=0.0,
            stats=SearchStats(),
        )
        table = unsatisfied.alternatives_table()
        assert len(table.splitlines()) == 3
