"""Metamorphic tests: known transformations with known consequences.

Each test applies a semantics-preserving (or predictably-scaling)
transformation to the data or the query and checks ACQUIRE's output
moves exactly as the transformation dictates — a strong end-to-end
check with no reference values needed.
"""

import numpy as np
import pytest

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.aggregates import AggregateSpec, get_aggregate
from repro.core.interval import Interval
from repro.core.predicate import Direction, SelectPredicate
from repro.core.query import AggregateConstraint, ConstraintOp, Query
from repro.engine.catalog import Database
from repro.engine.expression import col
from repro.engine.memory_backend import MemoryBackend
from tests.conftest import count_query

CONFIG = AcquireConfig(gamma=10.0, delta=0.05)


def _db_from(x: np.ndarray, y: np.ndarray) -> Database:
    database = Database()
    database.create_table("data", {"x": x, "y": y})
    return database


@pytest.fixture(scope="module")
def base_data():
    rng = np.random.default_rng(101)
    return rng.uniform(0, 100, 3000), rng.uniform(0, 100, 3000)


class TestRowTransformations:
    def test_shuffle_invariance(self, base_data):
        x, y = base_data
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=900)
        baseline = Acquire(MemoryBackend(_db_from(x, y))).run(query, CONFIG)
        permutation = np.random.default_rng(5).permutation(len(x))
        shuffled = Acquire(
            MemoryBackend(_db_from(x[permutation], y[permutation]))
        ).run(query, CONFIG)
        assert shuffled.best.pscores == baseline.best.pscores
        assert shuffled.best.aggregate_value == baseline.best.aggregate_value
        assert len(shuffled.answers) == len(baseline.answers)

    def test_duplication_doubles_counts(self, base_data):
        """Duplicating every row doubles COUNT at every refinement, so
        doubling the target must yield the same refinement vector."""
        x, y = base_data
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=900)
        doubled_query = count_query(
            "data", {"x": 30.0, "y": 30.0}, target=1800
        )
        single = Acquire(MemoryBackend(_db_from(x, y))).run(query, CONFIG)
        double = Acquire(
            MemoryBackend(
                _db_from(np.concatenate([x, x]), np.concatenate([y, y]))
            )
        ).run(doubled_query, CONFIG)
        assert double.best.pscores == single.best.pscores
        assert double.best.aggregate_value == pytest.approx(
            2 * single.best.aggregate_value
        )

    def test_attribute_scaling_invariance(self, base_data):
        """Scaling an attribute together with its predicate bounds and
        denominator leaves every PScore — hence the whole search —
        unchanged (Equation 1's stated purpose)."""
        x, y = base_data
        factor = 250.0

        def build(scale: float) -> tuple[Database, Query]:
            database = _db_from(x * scale, y)
            predicates = [
                SelectPredicate(
                    name="px",
                    expr=col("data.x"),
                    interval=Interval(0.0, 30.0 * scale),
                    direction=Direction.UPPER,
                    denominator=100.0 * scale,
                ),
                SelectPredicate(
                    name="py",
                    expr=col("data.y"),
                    interval=Interval(0.0, 30.0),
                    direction=Direction.UPPER,
                    denominator=100.0,
                ),
            ]
            constraint = AggregateConstraint(
                AggregateSpec(get_aggregate("COUNT")), ConstraintOp.EQ, 900
            )
            return database, Query.build(
                "q", ("data",), predicates, constraint
            )

        db1, q1 = build(1.0)
        db2, q2 = build(factor)
        plain = Acquire(MemoryBackend(db1)).run(q1, CONFIG)
        scaled = Acquire(MemoryBackend(db2)).run(q2, CONFIG)
        assert scaled.best.pscores == pytest.approx(plain.best.pscores)
        assert scaled.best.aggregate_value == plain.best.aggregate_value


class TestQueryTransformations:
    def test_vacuous_norefine_predicate_is_inert(self, base_data):
        """Adding an always-true NOREFINE predicate changes nothing."""
        x, y = base_data
        query = count_query("data", {"x": 30.0, "y": 30.0}, target=900)
        vacuous = SelectPredicate(
            name="vacuous",
            expr=col("data.x"),
            interval=Interval(-1e9, 1e9),
            direction=Direction.UPPER,
            refinable=False,
        )
        extended = query.with_predicates([*query.predicates, vacuous])
        base = Acquire(MemoryBackend(_db_from(x, y))).run(query, CONFIG)
        with_vacuous = Acquire(MemoryBackend(_db_from(x, y))).run(
            extended, CONFIG
        )
        assert with_vacuous.best.pscores == base.best.pscores
        assert with_vacuous.best.aggregate_value == base.best.aggregate_value

    def test_weight_scaling_preserves_answer(self, base_data):
        """Multiplying every weight by a constant rescales QScores but
        must not change which refinement wins under L1."""
        x, y = base_data
        database = _db_from(x, y)

        def run_with_weights(w: float):
            query = count_query("data", {"x": 30.0, "y": 30.0}, target=900)
            weighted = query.with_predicates(
                [p.with_weight(w) for p in query.predicates]
            )
            return Acquire(MemoryBackend(database)).run(weighted, CONFIG)

        unit = run_with_weights(1.0)
        tripled = run_with_weights(3.0)
        assert tripled.best.pscores == unit.best.pscores
        assert tripled.best.qscore == pytest.approx(3 * unit.best.qscore)

    def test_target_monotonicity(self, base_data):
        """A larger COUNT target never needs less refinement."""
        x, y = base_data
        database = _db_from(x, y)
        qscores = []
        for target in (500, 900, 1500, 2400):
            query = count_query(
                "data", {"x": 30.0, "y": 30.0}, target=target
            )
            result = Acquire(MemoryBackend(database)).run(query, CONFIG)
            assert result.satisfied
            qscores.append(result.best.qscore)
        assert qscores == sorted(qscores)
