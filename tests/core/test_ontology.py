"""Tests for ontology trees (paper section 7.3, Figure 7)."""

import math

import pytest

from repro.core.ontology import OntologyTree
from repro.exceptions import OntologyError


@pytest.fixture()
def food_tree() -> OntologyTree:
    """Figure 7(a)'s taxonomy."""
    tree = OntologyTree(root="Restaurants")
    tree.add_path("MiddleEastern", "Falafel")
    tree.add_path("MiddleEastern", "Gyro")
    tree.add_path("Mediterranean", "Greek", "Souvlaki")
    tree.add_path("Mediterranean", "Italian", "Pizza")
    return tree


class TestStructure:
    def test_depths(self, food_tree):
        assert food_tree.depth_of("Restaurants") == 0
        assert food_tree.depth_of("Gyro") == 2
        assert food_tree.depth_of("Souvlaki") == 3
        assert food_tree.depth == 3

    def test_parent_and_ancestor(self, food_tree):
        assert food_tree.parent("Gyro") == "MiddleEastern"
        assert food_tree.parent("Restaurants") is None
        assert food_tree.ancestor("Souvlaki", 2) == "Mediterranean"
        assert food_tree.ancestor("Souvlaki", 99) == "Restaurants"

    def test_descendants_and_leaves(self, food_tree):
        assert food_tree.descendants("Mediterranean") == {
            "Mediterranean", "Greek", "Italian", "Souvlaki", "Pizza",
        }
        assert food_tree.leaves_under("MiddleEastern") == {
            "Falafel", "Gyro",
        }

    def test_lca(self, food_tree):
        assert food_tree.lca("Souvlaki", "Pizza") == "Mediterranean"
        assert food_tree.lca("Gyro", "Pizza") == "Restaurants"
        assert food_tree.lca("Gyro", "Gyro") == "Gyro"
        assert food_tree.lca("Greek", "Souvlaki") == "Greek"

    def test_membership(self, food_tree):
        assert "Gyro" in food_tree
        assert "Sushi" not in food_tree

    def test_unknown_node_raises(self, food_tree):
        with pytest.raises(OntologyError):
            food_tree.depth_of("Sushi")

    def test_reparenting_rejected(self, food_tree):
        with pytest.raises(OntologyError):
            food_tree.add_edge("Mediterranean", "Gyro")

    def test_root_cannot_have_parent(self, food_tree):
        with pytest.raises(OntologyError):
            food_tree.add_edge("Gyro", "Restaurants")

    def test_from_mapping_validates_tree(self):
        with pytest.raises(OntologyError):
            OntologyTree.from_mapping({"ROOT": ["a"], "b": ["c"]})


class TestRefinementSemantics:
    def test_paper_gyro_to_mediterranean(self, food_tree):
        """The paper's example: relaxing Gyro toward any Mediterranean
        cuisine is a roll-up measured by relative node depths."""
        assert food_tree.distance({"Gyro"}, "Falafel") == 1
        assert food_tree.distance({"Gyro"}, "Souvlaki") == 2
        assert food_tree.distance({"Souvlaki"}, "Pizza") == 2

    def test_distance_zero_for_covered(self, food_tree):
        assert food_tree.distance({"Gyro"}, "Gyro") == 0
        assert food_tree.distance({"Mediterranean"}, "Pizza") == 0

    def test_distance_min_over_accepted(self, food_tree):
        assert food_tree.distance({"Gyro", "Souvlaki"}, "Pizza") == 2
        assert food_tree.distance({"Gyro", "Pizza"}, "Souvlaki") == 2
        # An accepted internal node covering the value wins outright.
        assert food_tree.distance({"Greek", "Gyro"}, "Souvlaki") == 0
        assert food_tree.distance({"Italian", "Gyro"}, "Souvlaki") == 1

    def test_distance_unknown_value_inf(self, food_tree):
        assert food_tree.distance({"Gyro"}, "Sushi") == math.inf

    def test_distance_unknown_accepted_raises(self, food_tree):
        with pytest.raises(OntologyError):
            food_tree.distance({"Sushi"}, "Gyro")

    def test_expand_is_rollup(self, food_tree):
        assert food_tree.expand({"Gyro"}, 0) == frozenset({"Gyro"})
        level1 = food_tree.expand({"Gyro"}, 1)
        assert {"Falafel", "Gyro", "MiddleEastern"} <= level1
        assert "Pizza" not in level1
        level2 = food_tree.expand({"Gyro"}, 2)
        assert "Pizza" in level2  # rolled up to the root

    def test_expand_monotone(self, food_tree):
        previous: frozenset = frozenset()
        for level in range(food_tree.depth + 1):
            covered = food_tree.expand({"Souvlaki"}, level)
            assert previous <= covered
            previous = covered

    def test_distance_consistent_with_expand(self, food_tree):
        """v is covered by expand(S, k) iff distance(S, v) <= k."""
        accepted = {"Gyro"}
        for value in food_tree.nodes:
            distance = food_tree.distance(accepted, value)
            for level in range(food_tree.depth + 1):
                covered = value in food_tree.expand(accepted, level)
                assert covered == (distance <= level)
