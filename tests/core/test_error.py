"""Unit tests for aggregate error functions (paper Equation 4)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.error import (
    HingeError,
    RelativeError,
    default_error_for,
)
from repro.core.query import ConstraintOp


class TestRelativeError:
    def test_exact_match(self):
        assert RelativeError()(100.0, 100.0) == 0.0

    def test_symmetric(self):
        error = RelativeError()
        assert error(100.0, 80.0) == pytest.approx(0.2)
        assert error(100.0, 120.0) == pytest.approx(0.2)

    def test_nan_actual_is_inf(self):
        assert RelativeError()(100.0, math.nan) == math.inf

    def test_zero_expected(self):
        error = RelativeError()
        assert error(0.0, 0.0) == 0.0
        assert error(0.0, 1.0) == math.inf


class TestHingeError:
    def test_overshoot_is_free(self):
        assert HingeError()(100.0, 150.0) == 0.0
        assert HingeError()(100.0, 100.0) == 0.0

    def test_undershoot_normalized(self):
        assert HingeError()(100.0, 80.0) == pytest.approx(0.2)

    def test_paper_literal_definition(self):
        hinge = HingeError(normalized=False)
        assert hinge(100.0, 80.0) == 20.0
        assert hinge(100.0, 130.0) == 0.0

    def test_nan(self):
        assert HingeError()(10.0, math.nan) == math.inf


class TestDefaults:
    def test_equality_gets_relative(self):
        assert isinstance(default_error_for(ConstraintOp.EQ), RelativeError)

    def test_ge_gets_hinge(self):
        error = default_error_for(ConstraintOp.GE)
        assert error(100.0, 200.0) == 0.0
        assert error(100.0, 50.0) == pytest.approx(0.5)

    def test_le_gets_upper_hinge(self):
        error = default_error_for(ConstraintOp.LE)
        assert error(100.0, 50.0) == 0.0
        assert error(100.0, 150.0) == pytest.approx(0.5)


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=0.001, max_value=1e9),
        st.floats(min_value=0, max_value=1e9, allow_nan=False),
    )
    def test_all_errors_non_negative(self, expected, actual):
        for op in ConstraintOp:
            assert default_error_for(op)(expected, actual) >= 0.0
