"""Ablations of DESIGN.md's design choices (beyond the paper's plots).

* Incremental aggregate computation vs re-executing every grid query
  as a full box query — the value of the Explore phase itself.
* The section 7.4 bitmap index on clustered data (skip-empty-cells).
* Evaluation-layer choice: memory vs SQLite vs the vectorized-grid
  accelerator, on identical workloads.
"""

import time

import numpy as np
import pytest

from repro.core.acquire import Acquire, AcquireConfig
from repro.core.expand import LpBestFirstTraversal
from repro.core.explore import Explorer
from repro.core.refined_space import RefinedSpace
from repro.datagen.distributions import clustered
from repro.engine.catalog import Database
from repro.engine.memory_backend import MemoryBackend
from repro.engine.sqlite_backend import SQLiteBackend
from tests.conftest import count_query


@pytest.fixture(scope="module")
def ablation_db() -> Database:
    rng = np.random.default_rng(99)
    database = Database()
    database.create_table(
        "data",
        {
            "x": rng.uniform(0, 100, 30_000),
            "y": rng.uniform(0, 100, 30_000),
        },
    )
    return database


def test_incremental_vs_full_reexecution(benchmark, ablation_db):
    """Explore phase ablation: cells + recurrence vs full box queries.

    The paper's claim that ACQUIRE evaluates "a large number of refined
    queries at a cost that is a fraction of the execution time for a
    single query" rests on this: per grid query, the incremental path
    touches only the (tiny) cell while the naive path re-filters
    everything.
    """
    query = count_query("data", {"x": 25.0, "y": 25.0}, target=2500)
    layer = MemoryBackend(ablation_db)
    prepared = layer.prepare(query, [400.0, 400.0])
    space = RefinedSpace(query, 10.0, [75.0, 75.0])
    coords_list = list(LpBestFirstTraversal(space))

    def incremental():
        explorer = Explorer(
            layer, prepared, space, query.constraint.spec.aggregate
        )
        return [explorer.compute_aggregate(c) for c in coords_list]

    def full_reexecution():
        return [
            query.constraint.spec.aggregate.finalize(
                layer.execute_box(prepared, space.scores(c))
            )
            for c in coords_list
        ]

    incremental_values = benchmark.pedantic(
        incremental, rounds=1, iterations=1, warmup_rounds=0
    )
    started = time.perf_counter()
    naive_values = full_reexecution()
    naive_elapsed = time.perf_counter() - started

    # Identical answers on every one of the grid queries.
    assert incremental_values == pytest.approx(naive_values)
    print(
        f"\n[ablation] grid queries: {len(coords_list)}, "
        f"naive re-execution: {naive_elapsed * 1000:.1f} ms"
    )


def test_bitmap_index_skips_empty_cells(benchmark):
    """Section 7.4 on clustered data: most cells are empty and the
    index proves it without executing them."""
    rng = np.random.default_rng(5)
    database = Database()
    database.create_table(
        "data",
        {
            "x": clustered(rng, 20_000, [10.0, 95.0], 2.0, 0.0, 100.0),
            "y": clustered(rng, 20_000, [10.0, 95.0], 2.0, 0.0, 100.0),
        },
    )
    query = count_query("data", {"x": 15.0, "y": 15.0}, target=9000)

    def with_index():
        layer = MemoryBackend(database)
        return Acquire(layer).run(
            query,
            AcquireConfig(gamma=10.0, delta=0.05, use_bitmap_index=True),
        )

    result = benchmark.pedantic(
        with_index, rounds=1, iterations=1, warmup_rounds=0
    )
    plain = Acquire(MemoryBackend(database)).run(
        query, AcquireConfig(gamma=10.0, delta=0.05)
    )
    assert result.stats.cells_skipped > 0
    assert result.stats.cells_executed < plain.stats.cells_executed
    assert result.best.qscore == pytest.approx(plain.best.qscore)
    print(
        f"\n[ablation] cells executed {result.stats.cells_executed} "
        f"(skipped {result.stats.cells_skipped}) vs plain "
        f"{plain.stats.cells_executed}"
    )


@pytest.mark.parametrize(
    "make_layer",
    [
        pytest.param(lambda db: MemoryBackend(db), id="memory"),
        pytest.param(
            lambda db: MemoryBackend(db, vectorized_grid=True),
            id="memory-vectorized-grid",
        ),
        pytest.param(lambda db: SQLiteBackend(db), id="sqlite"),
    ],
)
def test_backend_choice(benchmark, ablation_db, make_layer):
    """Same ACQ through each evaluation layer; answers must agree."""
    query = count_query("data", {"x": 25.0, "y": 25.0}, target=2500)
    layer = make_layer(ablation_db)

    def run():
        return Acquire(layer).run(
            query, AcquireConfig(gamma=10.0, delta=0.05)
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1,
                                warmup_rounds=0)
    assert result.satisfied
    assert result.best.aggregate_value == pytest.approx(2500, rel=0.05)


def test_indexed_vs_scan_cell_execution(benchmark, ablation_db):
    """Index-scan cost model: cells through the dim-0 sorted index
    touch a fraction of the rows a full scan does, with identical
    states on every grid cell."""
    query = count_query("data", {"x": 25.0, "y": 25.0}, target=2500)
    plain = MemoryBackend(ablation_db)
    indexed = MemoryBackend(ablation_db, indexed=True)
    prepared_p = plain.prepare(query, [400.0, 400.0])
    prepared_i = indexed.prepare(query, [400.0, 400.0])
    space = RefinedSpace(query, 10.0, [75.0, 75.0])
    coords_list = list(LpBestFirstTraversal(space))

    def run_indexed():
        return [
            indexed.execute_cell(prepared_i, space, coords)
            for coords in coords_list
        ]

    states = benchmark.pedantic(run_indexed, rounds=1, iterations=1,
                                warmup_rounds=0)
    before = plain.stats.rows_scanned
    expected = [
        plain.execute_cell(prepared_p, space, coords)
        for coords in coords_list
    ]
    scan_rows = plain.stats.rows_scanned - before
    assert states == expected
    assert indexed.stats.rows_scanned < scan_rows / 3
    print(
        f"\n[ablation] cell rows touched: indexed "
        f"{indexed.stats.rows_scanned} vs scan {scan_rows} "
        f"({len(coords_list)} cells)"
    )


def test_paged_store_overhead(benchmark, ablation_db):
    """Disk-paged sub-aggregate store (paper 5.1.1's 'paged to disk'):
    identical results, bounded memory, modest overhead."""
    from repro.core.expand import LpBestFirstTraversal
    from repro.core.explore import Explorer
    from repro.core.refined_space import RefinedSpace
    from repro.core.store import PagedSubAggregateStore

    query = count_query("data", {"x": 25.0, "y": 25.0}, target=2500)
    layer = MemoryBackend(ablation_db)
    prepared = layer.prepare(query, [400.0, 400.0])
    space = RefinedSpace(query, 10.0, [75.0, 75.0])
    coords_list = list(LpBestFirstTraversal(space))
    aggregate = query.constraint.spec.aggregate

    def paged():
        with PagedSubAggregateStore(cache_size=64) as store:
            explorer = Explorer(layer, prepared, space, aggregate,
                                store=store)
            values = [explorer.compute_aggregate(c) for c in coords_list]
            return values, store.evictions

    values, evictions = benchmark.pedantic(
        paged, rounds=1, iterations=1, warmup_rounds=0
    )
    in_memory = Explorer(layer, prepared, space, aggregate)
    expected = [in_memory.compute_aggregate(c) for c in coords_list]
    assert values == pytest.approx(expected)
    assert evictions > 0
    print(f"\n[ablation] paged store evictions: {evictions}")
