"""Section 3 extension: swapping the evaluation layer.

The paper: ACQUIRE's evaluation layer "is modular and can be replaced
with other techniques such as estimation, and/or sampling". Runs the
same ACQ through the exact memory engine, SQLite, a fact-table
Bernoulli sample, and marginal-histogram estimation, comparing cost
against the *validated* quality of the recommendation.
"""

import os

from benchmarks.conftest import run_once
from repro.harness.experiments import evaluation_layers
from repro.harness.report import save_json


def test_evaluation_layers(benchmark, record_experiment):
    result = run_once(
        benchmark, evaluation_layers, scale_rows=30_000, batched=True
    )
    record_experiment(result)
    json_path = save_json(
        result, os.path.join("benchmarks", "results", "BENCH_layers.json")
    )
    assert os.path.exists(json_path)

    rows = {row.method: row for row in result.rows}
    # The batched path collapsed layers into bulk round trips on every
    # backend (sampling delegates to memory, so it batches too).
    for method in ("memory", "sqlite", "sampling", "histogram"):
        assert rows[method].batches >= 1, method
    # Exact layers agree with each other on the recommendation.
    assert rows["memory"].qscore == rows["sqlite"].qscore
    assert rows["memory"].aggregate_value == rows["sqlite"].aggregate_value
    # Approximate layers still produce a recommendation whose
    # *validated* error is bounded (sampling variance permitting).
    for approx in ("sampling", "histogram"):
        assert rows[approx].extra["validated_error"] < 0.5, approx
    # The histogram layer touches rows exactly once (prepare).
    assert rows["histogram"].rows_scanned <= rows["memory"].rows_scanned
    # Sampling runs on 10x fewer tuples, hence clearly cheaper than
    # exact memory execution.
    assert rows["sampling"].time_ms < rows["memory"].time_ms * 1.5
