"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures through
:mod:`repro.harness.experiments`, records the full series to
``benchmarks/results/<name>.txt``, and asserts the *shape* the paper
reports (who wins, how curves trend) rather than absolute numbers.

Scale with ``REPRO_BENCH_SCALE`` (default 1.0); the defaults finish on
a single CPU core in a few minutes total.
"""

from __future__ import annotations

import pytest

from repro.harness.metrics import ExperimentResult
from repro.harness.report import render_result, save_result


@pytest.fixture()
def record_experiment():
    """Save the experiment report and echo it into the pytest output."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        path = save_result(result)
        print()
        print(render_result(result))
        print(f"[report saved to {path}]")
        return result

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )
