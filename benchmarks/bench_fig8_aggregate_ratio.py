"""Figure 8: ACQUIRE vs Top-k vs TQGen vs BinSearch across aggregate
ratios (paper section 8.4.1).

Regenerates all three panels — execution time (8a), relative aggregate
error (8b), refinement score (8c) — on the Q2-join COUNT workload.
"""

import math

from benchmarks.conftest import run_once
from repro.harness.experiments import fig8_aggregate_ratio


def test_fig8_aggregate_ratio(benchmark, record_experiment):
    result = run_once(benchmark, fig8_aggregate_ratio, scale_rows=20_000)
    record_experiment(result)

    acquire_time = dict(result.series("ACQUIRE", "time_ms"))
    # 8a: ACQUIRE's time grows as the ratio shrinks (more expansion).
    assert acquire_time[0.1] > acquire_time[0.9]
    # 8a: TQGen is the slowest technique by a wide margin.
    tqgen_factor = result.speedup("time_ms", "TQGen")
    assert tqgen_factor is not None and tqgen_factor > 5.0
    # 8b: ACQUIRE's error is always within delta.
    for _, error in result.series("ACQUIRE", "error"):
        assert error <= result.settings["delta"] + 1e-9
    # 8c: ACQUIRE's refinement scores are the lowest of all methods.
    for method in ("Top-k", "TQGen", "BinSearch"):
        factor = result.speedup("qscore", method)
        assert factor is None or factor >= 0.99, (method, factor)
    # Every ACQUIRE point actually satisfied the constraint.
    assert all(
        row.satisfied for row in result.rows if row.method == "ACQUIRE"
    )
    # Sanity: no metric is NaN for ACQUIRE.
    assert not any(
        math.isnan(row.qscore)
        for row in result.rows
        if row.method == "ACQUIRE"
    )
