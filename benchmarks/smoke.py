"""CI smoke run for the benchmark plumbing.

Runs one tiny ``evaluation_layers`` sweep point per backend (memory,
sqlite, sampling, histogram) in batched mode and writes the
machine-readable ``BENCH_layers.json`` that the full benchmark suite
also emits — so the JSON schema, the batch counters, and the harness
report path cannot rot without CI noticing. Unlike
``bench_evaluation_layers.py`` this needs nothing beyond the runtime
dependencies (no pytest-benchmark).

Usage::

    PYTHONPATH=src python benchmarks/smoke.py [--scale-rows N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BACKENDS = ("memory", "sqlite", "sampling", "histogram")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale-rows", type=int, default=1500)
    parser.add_argument(
        "--out",
        default=os.path.join("benchmarks", "results", "BENCH_layers.json"),
    )
    args = parser.parse_args(argv)

    from repro.harness.experiments import evaluation_layers
    from repro.harness.report import render_rows, save_json

    result = evaluation_layers(scale_rows=args.scale_rows, batched=True)
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    path = save_json(result, args.out)

    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    rows = {row["method"]: row for row in payload["rows"]}

    failures = []
    missing = set(BACKENDS) - set(rows)
    if missing:
        failures.append(f"backends missing from JSON: {sorted(missing)}")
    for method in BACKENDS:
        row = rows.get(method)
        if row is None:
            continue
        if row["batches"] < 1:
            failures.append(f"{method}: batched run recorded no batches")
        if row["queries"] < 1:
            failures.append(f"{method}: no queries recorded")
    if "memory" in rows and "sqlite" in rows:
        if rows["memory"]["qscore"] != rows["sqlite"]["qscore"]:
            failures.append(
                "exact layers disagree: memory qscore "
                f"{rows['memory']['qscore']} != sqlite "
                f"{rows['sqlite']['qscore']}"
            )

    print(render_rows(result.rows))
    print(f"\nwrote {path}")
    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
