"""CI smoke run for the benchmark plumbing.

Two tiny sweeps, each emitting the machine-readable JSON the full
benchmark suite also produces — so the JSON schema, the work counters,
and the harness report path cannot rot without CI noticing. Unlike
``bench_evaluation_layers.py`` this needs nothing beyond the runtime
dependencies (no pytest-benchmark).

1. ``evaluation_layers`` (batched) per backend — memory, sqlite,
   sampling, histogram — writes ``BENCH_layers.json`` and checks the
   batch counters plus memory/sqlite answer agreement.
2. ``explore_modes`` — serial vs batched vs materialized vs auto on
   the exact backends — writes ``BENCH_explore.json`` and checks that
   every mode returns the same answer, that materialization cuts
   round trips at least ``MIN_SPEEDUP``-fold versus serial, that auto
   never does more round trips than the better fixed mode, and that
   the materialized round-trip counts have not regressed above the
   checked-in ``BENCH_explore_baseline.json``.
3. ``grid_cache_sweep`` — a constraint sweep run twice, without and
   with a shared grid tensor cache — writes ``BENCH_cache.json`` and
   checks that both arms agree on every answer, that the cached arm
   records hits, that it issues *strictly fewer* backend queries than
   the uncached arm, and that its query total has not regressed above
   the checked-in ``BENCH_cache_baseline.json``.
4. ``sharded_tiles`` + ``persistent_cache`` (the ``bench-parallel``
   job; ``--parallel-only`` runs just these) — writes
   ``BENCH_parallel.json`` and checks that the sharded tiled arm is
   bit-identical to serial at every worker count on *both* executor
   tiers (thread and process), that the thread arm is no slower than
   ``WALL_CLOCK_SLACK``x serial wall-clock, that process arms really
   ran on the process tier with zero runtime fallbacks, that — on
   hosts with at least ``PROCESS_GATE_CORES`` cores — the 4-worker
   process arm beats serial on the memory backend by
   ``MIN_PROCESS_SPEEDUP``x (the GIL-escape gate), and that the warm
   persistent-cache process answers identically to the cold one while
   issuing *strictly fewer* backend queries; the warm arm's query
   total is regression-guarded by the checked-in
   ``BENCH_parallel_baseline.json``.
5. ``service_load`` (the ``bench-service`` job; ``--service-only``
   runs just this) — writes ``BENCH_service.json`` and checks that the
   closed-loop arm completed every request with none rejected, that —
   on hosts with at least ``PROCESS_GATE_CORES`` cores — throughput
   at 4 service workers is at least ``MIN_SERVICE_SPEEDUP``x the
   1-worker arm on the sqlite backend, that the corpus arms report
   cross-request shared-cache hits (the dedupe gate), that the
   duplicate-heavy fused arm completes every request with zero
   rejections, ``fused_passes > 0``, and strictly fewer backend
   queries than its unfused twin (the cross-query fusion gate), and
   that the serial corpus replay's deterministic backend-query total
   has not regressed above the checked-in
   ``BENCH_service_baseline.json``.

Usage::

    PYTHONPATH=src python benchmarks/smoke.py [--scale-rows N] [--out PATH]
        [--explore-out PATH] [--cache-out PATH] [--parallel-out PATH]
        [--service-out PATH] [--baseline PATH] [--cache-baseline PATH]
        [--parallel-baseline PATH] [--service-baseline PATH]
        [--update-baseline] [--parallel-only] [--service-only]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BACKENDS = ("memory", "sqlite", "sampling", "histogram")
EXPLORE_BACKENDS = ("memory", "sqlite")
EXPLORE_MODES = ("serial", "batched", "materialized", "auto")

#: Required round-trip reduction of materialized vs serial Explore.
MIN_SPEEDUP = 5

#: Wall-clock tolerance for the sharded tiled arm vs serial. At CI
#: scale a tile is a handful of milliseconds, so thread-pool overhead
#: can eat most of the overlap win; the gate only has to prove
#: sharding is not a slowdown, hence a noise allowance rather than a
#: demanded speedup. On a single-core machine threads *cannot* beat
#: serial — there the gate degrades to a sanity bound that still
#: catches pathological serialization (a lock bug turning overlap
#: into convoying). The *deterministic* gates — bit-identical
#: answers, strictly fewer warm-cache queries — carry no slack at
#: all.
WALL_CLOCK_SLACK = 1.25
# On one core the bound is a pure sanity check (threads cannot win);
# at tens-of-ms arm durations scheduler jitter alone reaches ~2x, so
# the single-core bound is deliberately loose — it exists to catch
# convoying (10x-style blowups), not contention noise.
SINGLE_CORE_SLACK = 2.5

#: The process tier's comparative gates only bind on hosts with at
#: least this many cores: below that, worker processes time-slice one
#: core and IPC overhead is all the tier can show, so wall-clock
#: comparisons measure the scheduler, not the engine. The exact gates
#: (bit-identical answers, tile_executor == 'process', zero
#: fallbacks) bind everywhere.
PROCESS_GATE_CORES = 4

#: Required wall-clock speedup of the 4-worker process arm over the
#: single-worker serial arm on the memory backend, enforced only on
#: hosts with >= PROCESS_GATE_CORES cores. Threads cannot deliver
#: this on that backend (pure-Python tile fetches hold the GIL);
#: processes must.
MIN_PROCESS_SPEEDUP = 1.5

#: Required closed-loop throughput ratio of the 4-worker service over
#: the 1-worker service on the sqlite backend, enforced only on hosts
#: with >= PROCESS_GATE_CORES cores. SQLite's C execution drops the
#: GIL, so service worker threads overlap real backend work; on a
#: single core the same threads merely time-slice and the ratio
#: measures the scheduler.
MIN_SERVICE_SPEEDUP = 2.0


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _wall_clock_slack() -> float:
    return SINGLE_CORE_SLACK if _cores() <= 1 else WALL_CLOCK_SLACK


def _check_layers(payload: dict) -> list[str]:
    rows = {row["method"]: row for row in payload["rows"]}
    failures = []
    missing = set(BACKENDS) - set(rows)
    if missing:
        failures.append(f"backends missing from JSON: {sorted(missing)}")
    for method in BACKENDS:
        row = rows.get(method)
        if row is None:
            continue
        if row["batches"] < 1:
            failures.append(f"{method}: batched run recorded no batches")
        if row["queries"] < 1:
            failures.append(f"{method}: no queries recorded")
    if "memory" in rows and "sqlite" in rows:
        if rows["memory"]["qscore"] != rows["sqlite"]["qscore"]:
            failures.append(
                "exact layers disagree: memory qscore "
                f"{rows['memory']['qscore']} != sqlite "
                f"{rows['sqlite']['qscore']}"
            )
    return failures


def _check_explore(payload: dict) -> list[str]:
    rows = {row["method"]: row for row in payload["rows"]}
    failures = []
    for backend in EXPLORE_BACKENDS:
        per_mode = {
            mode: rows.get(f"{backend}/{mode}") for mode in EXPLORE_MODES
        }
        missing = [mode for mode, row in per_mode.items() if row is None]
        if missing:
            failures.append(f"{backend}: modes missing from JSON: {missing}")
            continue
        qscores = {mode: row["qscore"] for mode, row in per_mode.items()}
        if len(set(qscores.values())) != 1:
            failures.append(f"{backend}: modes disagree on answer: {qscores}")
        if per_mode["materialized"]["materializations"] < 1:
            failures.append(f"{backend}: materialized run built no grid")
        if per_mode["materialized"]["explore_mode"] != "materialized":
            failures.append(
                f"{backend}: materialized run reported explore_mode="
                f"{per_mode['materialized']['explore_mode']!r}"
            )
        serial = per_mode["serial"]["queries"]
        materialized = per_mode["materialized"]["queries"]
        if materialized * MIN_SPEEDUP > serial:
            failures.append(
                f"{backend}: materialized explore saved too little — "
                f"{materialized} round trips vs {serial} serial "
                f"(need {MIN_SPEEDUP}x)"
            )
        best_fixed = min(
            per_mode[mode]["queries"]
            for mode in ("serial", "batched", "materialized")
        )
        if per_mode["auto"]["queries"] > best_fixed:
            failures.append(
                f"{backend}: auto did {per_mode['auto']['queries']} round "
                f"trips; the better fixed mode needs only {best_fixed}"
            )
    return failures


def _check_explore_baseline(
    payload: dict, baseline_path: str
) -> list[str]:
    """Perf-regression guard on materialized round-trip counts.

    The baseline is checked in; regenerate it deliberately with
    ``--update-baseline`` when the workload or the engine changes.
    Skipped (with a notice) when the run's scale differs from the
    baseline's, since counts are only comparable at equal scale.
    """
    if not os.path.exists(baseline_path):
        return [f"explore baseline missing: {baseline_path}"]
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("scale_rows") != payload["settings"].get("scale_rows"):
        print(
            "note: baseline scale_rows "
            f"{baseline.get('scale_rows')} != run scale_rows "
            f"{payload['settings'].get('scale_rows')}; skipping the "
            "regression guard"
        )
        return []
    rows = {row["method"]: row for row in payload["rows"]}
    failures = []
    for backend, allowed in baseline["materialized_queries"].items():
        row = rows.get(f"{backend}/materialized")
        if row is None:
            continue
        if row["queries"] > allowed:
            failures.append(
                f"{backend}: materialized round trips regressed — "
                f"{row['queries']} > baseline {allowed}"
            )
    return failures


def _check_cache(payload: dict) -> list[str]:
    """Gate: the cached arm must beat the uncached arm outright."""
    failures = []
    arms: dict[str, list[dict]] = {"uncached": [], "cached": []}
    for row in payload["rows"]:
        arm = row["method"].rsplit("/", 1)[-1]
        if arm in arms:
            arms[arm].append(row)
    if not arms["uncached"] or not arms["cached"]:
        return [f"cache sweep arms missing: { {k: len(v) for k, v in arms.items()} }"]
    if len(arms["uncached"]) != len(arms["cached"]):
        return [
            "cache sweep arms unequal: "
            f"{len(arms['uncached'])} uncached vs {len(arms['cached'])} cached"
        ]
    for plain, cached in zip(arms["uncached"], arms["cached"]):
        if plain["x_value"] != cached["x_value"]:
            failures.append(
                f"cache sweep misaligned at {plain['x_value']} vs "
                f"{cached['x_value']}"
            )
            continue
        if plain["qscore"] != cached["qscore"]:
            failures.append(
                f"ratio {plain['x_value']}: cached answer diverged — "
                f"qscore {cached['qscore']} != {plain['qscore']}"
            )
        if plain["aggregate_value"] != cached["aggregate_value"]:
            failures.append(
                f"ratio {plain['x_value']}: cached aggregate diverged — "
                f"{cached['aggregate_value']} != {plain['aggregate_value']}"
            )
    hits = sum(row["cache_hits"] for row in arms["cached"])
    if hits < 1:
        failures.append("cached arm recorded no cache hits")
    plain_queries = sum(row["queries"] for row in arms["uncached"])
    cached_queries = sum(row["queries"] for row in arms["cached"])
    if cached_queries >= plain_queries:
        failures.append(
            "cache saved nothing: cached arm issued "
            f"{cached_queries} backend queries vs {plain_queries} uncached "
            "(must be strictly fewer)"
        )
    return failures


def _check_cache_baseline(payload: dict, baseline_path: str) -> list[str]:
    """Perf-regression guard on the cached arm's backend queries."""
    if not os.path.exists(baseline_path):
        return [f"cache baseline missing: {baseline_path}"]
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("scale_rows") != payload["settings"].get("scale_rows"):
        print(
            "note: cache baseline scale_rows "
            f"{baseline.get('scale_rows')} != run scale_rows "
            f"{payload['settings'].get('scale_rows')}; skipping the "
            "regression guard"
        )
        return []
    cached_queries = sum(
        row["queries"]
        for row in payload["rows"]
        if row["method"].endswith("/cached")
    )
    allowed = baseline.get("cached_queries", 0)
    if cached_queries > allowed:
        return [
            "cached-arm backend queries regressed — "
            f"{cached_queries} > baseline {allowed}"
        ]
    return []


def _check_parallel(payload: dict) -> list[str]:
    """Gates for the sharded-tile and persistent-cache arms.

    Answers must be bit-identical across worker counts, executor
    tiers, and processes (exact gates); the sharded thread arm may not
    exceed ``WALL_CLOCK_SLACK`` times the serial arm's wall-clock
    (noise-tolerant gate); process arms must actually run on the
    process tier with zero runtime fallbacks (exact gate), and — only
    on hosts with at least ``PROCESS_GATE_CORES`` cores — the
    4-worker process arm must beat the serial arm on the memory
    backend by ``MIN_PROCESS_SPEEDUP``x (the GIL-escape gate); the
    warm process must issue strictly fewer backend queries than the
    cold one (exact gate).
    """
    failures = []
    sharded: dict[tuple[str, str], dict[int, dict]] = {}
    arms: dict[str, dict] = {}
    for row in payload["rows"]:
        parts = row["method"].split("/")
        if (
            len(parts) == 3
            and parts[2].startswith("w")
            and parts[2][1:].isdigit()
        ):
            key = (parts[0], parts[1])
            sharded.setdefault(key, {})[int(parts[2][1:])] = row
        elif len(parts) == 2 and parts[1] in ("cold", "warm"):
            arms[parts[1]] = row
    if not sharded:
        failures.append("sharded rows missing from JSON")
    cores = _cores()
    for (backend, executor), per_worker in sorted(sharded.items()):
        label = f"{backend}/{executor}"
        if 1 not in per_worker or len(per_worker) < 2:
            failures.append(
                f"{label}: need a serial and a sharded arm, got "
                f"workers {sorted(per_worker)}"
            )
            continue
        qscores = {w: row["qscore"] for w, row in per_worker.items()}
        if len(set(qscores.values())) != 1:
            failures.append(
                f"{label}: worker counts disagree on answer: {qscores}"
            )
        serial_ms = per_worker[1]["time_ms"]
        slack = _wall_clock_slack()
        for workers, row in per_worker.items():
            if workers == 1:
                continue
            if not row["extra"].get("identical_to_serial", False):
                failures.append(
                    f"{label}/w{workers}: block states diverged from "
                    "the serial explorer"
                )
            if row["extra"].get("parallel_tiles", 0) < 1:
                failures.append(
                    f"{label}/w{workers}: no tiles went through the "
                    "scheduler"
                )
            if executor == "process":
                if row["extra"].get("tile_executor") != "process":
                    failures.append(
                        f"{label}/w{workers}: ran on "
                        f"{row['extra'].get('tile_executor')!r} instead "
                        "of the process tier"
                    )
                if row["extra"].get("process_tiles", 0) < 1:
                    failures.append(
                        f"{label}/w{workers}: no tiles crossed the "
                        "process boundary"
                    )
                if row["extra"].get("process_fallbacks", 0):
                    failures.append(
                        f"{label}/w{workers}: "
                        f"{row['extra']['process_fallbacks']} tiles fell "
                        "back in-process (pool unhealthy)"
                    )
            if executor == "process" and cores < PROCESS_GATE_CORES:
                continue  # wall-clock gates need real parallel cores
            if row["time_ms"] > serial_ms * slack:
                failures.append(
                    f"{label}/w{workers}: sharded arm too slow — "
                    f"{row['time_ms']:.1f}ms vs {serial_ms:.1f}ms serial "
                    f"(allowed {slack}x)"
                )
    process_w4 = sharded.get(("memory", "process"), {}).get(4)
    serial_w1 = sharded.get(("memory", "thread"), {}).get(1)
    if (
        cores >= PROCESS_GATE_CORES
        and process_w4 is not None
        and serial_w1 is not None
        and process_w4["time_ms"] * MIN_PROCESS_SPEEDUP
        > serial_w1["time_ms"]
    ):
        failures.append(
            "GIL-escape gate: memory/process/w4 took "
            f"{process_w4['time_ms']:.1f}ms vs "
            f"{serial_w1['time_ms']:.1f}ms serial — need "
            f"{MIN_PROCESS_SPEEDUP}x on a {cores}-core host"
        )
    if "cold" not in arms or "warm" not in arms:
        failures.append(f"persistent-cache arms missing: {sorted(arms)}")
        return failures
    cold, warm = arms["cold"], arms["warm"]
    if cold["extra"].get("qscores") != warm["extra"].get("qscores"):
        failures.append(
            "warm process answers diverged: "
            f"{warm['extra'].get('qscores')} != "
            f"{cold['extra'].get('qscores')}"
        )
    if warm["queries"] >= cold["queries"]:
        failures.append(
            "persistent cache saved nothing: warm process issued "
            f"{warm['queries']} backend queries vs {cold['queries']} cold "
            "(must be strictly fewer)"
        )
    if warm["persistent_hits"] < 1:
        failures.append("warm process recorded no persistent-tier hits")
    return failures


def _check_parallel_baseline(
    payload: dict, baseline_path: str
) -> list[str]:
    """Perf-regression guard on the warm process's backend queries."""
    if not os.path.exists(baseline_path):
        return [f"parallel baseline missing: {baseline_path}"]
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("scale_rows") != payload["settings"].get("scale_rows"):
        print(
            "note: parallel baseline scale_rows "
            f"{baseline.get('scale_rows')} != run scale_rows "
            f"{payload['settings'].get('scale_rows')}; skipping the "
            "regression guard"
        )
        return []
    warm_queries = sum(
        row["queries"]
        for row in payload["rows"]
        if row["method"].endswith("/warm")
    )
    allowed = baseline.get("warm_queries", 0)
    if warm_queries > allowed:
        return [
            "warm-process backend queries regressed — "
            f"{warm_queries} > baseline {allowed}"
        ]
    return []


def _check_service(payload: dict) -> list[str]:
    """Gates for the ACQ-as-a-service load-generation arms.

    The closed-loop sweep must complete every request with none
    rejected and report latency percentiles (exact gates); on hosts
    with at least ``PROCESS_GATE_CORES`` cores the 4-worker arm must
    sustain ``MIN_SERVICE_SPEEDUP``x the 1-worker throughput on the
    sqlite backend (the worker-scaling gate). The corpus arms must
    report cross-request shared-cache hits — the serial replay
    deterministically (its duplicates re-read tensors their originals
    cached), the open-loop arm as the live demonstration of dedupe
    under concurrent arrival.

    The fusion pair gates the cross-query coalescer: the fused arm
    must complete every request with zero rejections, report
    ``fused_passes > 0`` (merged passes actually served multiple
    requests), and issue *strictly fewer* backend queries than the
    unfused arm at equal workers.
    """
    failures = []
    closed: dict[int, dict] = {}
    corpus: dict[str, dict] = {}
    fusion: dict[str, dict] = {}
    for row in payload["rows"]:
        if row["method"].startswith("service/closed/"):
            closed[int(row["x_value"])] = row
        elif row["method"] == "service/open/corpus":
            corpus["open"] = row
        elif row["method"] == "service/serial/corpus":
            corpus["serial"] = row
        elif row["method"] == "service/fused/corpus":
            fusion["fused"] = row
        elif row["method"] == "service/unfused/corpus":
            fusion["unfused"] = row
    if not closed:
        failures.append("closed-loop service rows missing from JSON")
    for workers, row in sorted(closed.items()):
        label = f"{row['method']}/w{workers}"
        extra = row["extra"]
        if extra.get("rejected", 0):
            failures.append(
                f"{label}: {extra['rejected']} requests rejected — the "
                "sweep sizes its queue to admit every request"
            )
        if extra.get("completed", 0) < 1:
            failures.append(f"{label}: no requests completed")
        if not row.get("satisfied", False):
            failures.append(f"{label}: a completed request went unsatisfied")
        if extra.get("p50_ms", 0.0) <= 0.0:
            failures.append(f"{label}: no latency percentiles recorded")
        if extra.get("p99_ms", 0.0) < extra.get("p50_ms", 0.0):
            failures.append(
                f"{label}: p99 {extra.get('p99_ms')}ms below p50 "
                f"{extra.get('p50_ms')}ms"
            )
    cores = _cores()
    one, four = closed.get(1), closed.get(4)
    if (
        cores >= PROCESS_GATE_CORES
        and one is not None
        and four is not None
        and four["extra"]["throughput_rps"]
        < one["extra"]["throughput_rps"] * MIN_SERVICE_SPEEDUP
    ):
        failures.append(
            "service worker-scaling gate: 4 workers sustained "
            f"{four['extra']['throughput_rps']:.1f} rps vs "
            f"{one['extra']['throughput_rps']:.1f} rps at 1 worker — "
            f"need {MIN_SERVICE_SPEEDUP}x on a {cores}-core host"
        )
    for arm in ("open", "serial"):
        if arm not in corpus:
            failures.append(f"service/{arm}/corpus row missing from JSON")
    if corpus:
        for arm, row in corpus.items():
            extra = row["extra"]
            if extra.get("completed", 0) != extra.get("requests", -1):
                failures.append(
                    f"service/{arm}/corpus: only {extra.get('completed')} "
                    f"of {extra.get('requests')} requests completed"
                )
            if row["cache_hits"] < 1:
                failures.append(
                    f"service/{arm}/corpus: no cross-request shared-cache "
                    "hits — duplicate requests did not dedupe"
                )
    for arm in ("fused", "unfused"):
        if arm not in fusion:
            failures.append(f"service/{arm}/corpus row missing from JSON")
    if len(fusion) == 2:
        fused, unfused = fusion["fused"], fusion["unfused"]
        extra = fused["extra"]
        if extra.get("rejected", 0):
            failures.append(
                f"service/fused/corpus: {extra['rejected']} requests "
                "rejected — the fused arm admits with the wait policy"
            )
        if extra.get("completed", 0) != extra.get("requests", -1):
            failures.append(
                f"service/fused/corpus: only {extra.get('completed')} of "
                f"{extra.get('requests')} requests completed"
            )
        if extra.get("fused_passes", 0) < 1:
            failures.append(
                "service/fused/corpus: fused_passes is 0 — no merged "
                "pass served multiple in-flight requests"
            )
        if fused["queries"] >= unfused["queries"]:
            failures.append(
                "cross-query fusion gate: fused arm issued "
                f"{fused['queries']} backend queries vs "
                f"{unfused['queries']} unfused — fusion must be "
                "strictly fewer at equal workers"
            )
    return failures


def _check_service_baseline(payload: dict, baseline_path: str) -> list[str]:
    """Perf-regression guard on the serial corpus replay's queries.

    Only the serial arm is pinned: the concurrent arms' counters
    depend on request interleaving (two simultaneous identical
    requests may both miss the cache), so their totals are not
    reproducible run to run.
    """
    if not os.path.exists(baseline_path):
        return [f"service baseline missing: {baseline_path}"]
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("scale_rows") != payload["settings"].get("scale_rows"):
        print(
            "note: service baseline scale_rows "
            f"{baseline.get('scale_rows')} != run scale_rows "
            f"{payload['settings'].get('scale_rows')}; skipping the "
            "regression guard"
        )
        return []
    serial_queries = sum(
        row["queries"]
        for row in payload["rows"]
        if row["method"] == "service/serial/corpus"
    )
    allowed = baseline.get("serial_queries", 0)
    if serial_queries > allowed:
        return [
            "serial corpus replay's backend queries regressed — "
            f"{serial_queries} > baseline {allowed}"
        ]
    return []


def _write_service_baseline(payload: dict, baseline_path: str) -> None:
    baseline = {
        "scale_rows": payload["settings"].get("scale_rows"),
        "serial_queries": sum(
            row["queries"]
            for row in payload["rows"]
            if row["method"] == "service/serial/corpus"
        ),
    }
    with open(baseline_path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(f"wrote baseline {baseline_path}")


def _write_parallel_baseline(payload: dict, baseline_path: str) -> None:
    baseline = {
        "scale_rows": payload["settings"].get("scale_rows"),
        "warm_queries": sum(
            row["queries"]
            for row in payload["rows"]
            if row["method"].endswith("/warm")
        ),
    }
    with open(baseline_path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(f"wrote baseline {baseline_path}")


def _write_cache_baseline(payload: dict, baseline_path: str) -> None:
    baseline = {
        "scale_rows": payload["settings"].get("scale_rows"),
        "cached_queries": sum(
            row["queries"]
            for row in payload["rows"]
            if row["method"].endswith("/cached")
        ),
    }
    with open(baseline_path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(f"wrote baseline {baseline_path}")


def _write_explore_baseline(payload: dict, baseline_path: str) -> None:
    rows = {row["method"]: row for row in payload["rows"]}
    baseline = {
        "scale_rows": payload["settings"].get("scale_rows"),
        "materialized_queries": {
            backend: rows[f"{backend}/materialized"]["queries"]
            for backend in EXPLORE_BACKENDS
            if f"{backend}/materialized" in rows
        },
    }
    with open(baseline_path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(f"wrote baseline {baseline_path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale-rows", type=int, default=1500)
    parser.add_argument(
        "--out",
        default=os.path.join("benchmarks", "results", "BENCH_layers.json"),
    )
    parser.add_argument(
        "--explore-out",
        default=os.path.join("benchmarks", "results", "BENCH_explore.json"),
    )
    parser.add_argument(
        "--cache-out",
        default=os.path.join("benchmarks", "results", "BENCH_cache.json"),
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(
            "benchmarks", "results", "BENCH_explore_baseline.json"
        ),
    )
    parser.add_argument(
        "--cache-baseline",
        default=os.path.join(
            "benchmarks", "results", "BENCH_cache_baseline.json"
        ),
    )
    parser.add_argument(
        "--parallel-out",
        default=os.path.join(
            "benchmarks", "results", "BENCH_parallel.json"
        ),
    )
    parser.add_argument(
        "--parallel-baseline",
        default=os.path.join(
            "benchmarks", "results", "BENCH_parallel_baseline.json"
        ),
    )
    parser.add_argument(
        "--service-out",
        default=os.path.join(
            "benchmarks", "results", "BENCH_service.json"
        ),
    )
    parser.add_argument(
        "--service-baseline",
        default=os.path.join(
            "benchmarks", "results", "BENCH_service_baseline.json"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the regression baselines from this run",
    )
    parser.add_argument(
        "--parallel-only",
        action="store_true",
        help="run only the sharded-tile / persistent-cache section",
    )
    parser.add_argument(
        "--service-only",
        action="store_true",
        help="run only the ACQ-as-a-service load-generation section",
    )
    args = parser.parse_args(argv)

    from repro.harness.experiments import (
        evaluation_layers,
        explore_modes,
        grid_cache_sweep,
        persistent_cache,
        service_load,
        sharded_tiles,
    )
    from repro.harness.metrics import ExperimentResult
    from repro.harness.report import render_rows, save_json

    failures = []

    if args.parallel_only or args.service_only:
        if args.parallel_only:
            failures += _run_parallel(
                args, sharded_tiles, persistent_cache, ExperimentResult,
                render_rows, save_json,
            )
        if args.service_only:
            failures += _run_service(
                args, service_load, render_rows, save_json,
            )
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1 if failures else 0

    result = evaluation_layers(scale_rows=args.scale_rows, batched=True)
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    path = save_json(result, args.out)
    with open(path, encoding="utf-8") as handle:
        failures += _check_layers(json.load(handle))
    print(render_rows(result.rows))
    print(f"\nwrote {path}\n")

    explore = explore_modes(scale_rows=args.scale_rows)
    explore_path = save_json(explore, args.explore_out)
    with open(explore_path, encoding="utf-8") as handle:
        explore_payload = json.load(handle)
    failures += _check_explore(explore_payload)
    if args.update_baseline:
        _write_explore_baseline(explore_payload, args.baseline)
    else:
        failures += _check_explore_baseline(explore_payload, args.baseline)
    print(render_rows(explore.rows))
    print(f"\nwrote {explore_path}\n")

    cache = grid_cache_sweep(scale_rows=args.scale_rows)
    cache_path = save_json(cache, args.cache_out)
    with open(cache_path, encoding="utf-8") as handle:
        cache_payload = json.load(handle)
    failures += _check_cache(cache_payload)
    if args.update_baseline:
        _write_cache_baseline(cache_payload, args.cache_baseline)
    else:
        failures += _check_cache_baseline(cache_payload, args.cache_baseline)
    print(render_rows(cache.rows))
    print(f"\nwrote {cache_path}\n")

    failures += _run_parallel(
        args, sharded_tiles, persistent_cache, ExperimentResult,
        render_rows, save_json,
    )

    failures += _run_service(args, service_load, render_rows, save_json)

    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _run_parallel(
    args, sharded_tiles, persistent_cache, ExperimentResult,
    render_rows, save_json,
) -> list[str]:
    """Run section 4 (sharded tiles + persistent cache) and gate it."""
    # Floor the sharded arm's scale: below a few thousand rows a tile
    # fetch is sub-millisecond and pool dispatch overhead — not backend
    # work — dominates the wall-clock comparison.
    sharded = sharded_tiles(scale_rows=max(args.scale_rows, 4000))
    persist = persistent_cache(scale_rows=args.scale_rows)
    combined = ExperimentResult(
        name="parallel",
        title="Sharded tiles + persistent cross-process grid cache",
        paper_expectation=(
            "Sharding and caching are pure execution strategies: "
            "identical answers, less backend work."
        ),
        rows=sharded.rows + persist.rows,
        settings={
            "scale_rows": sharded.settings["scale_rows"],
            "sharded": sharded.settings,
            "persistent": persist.settings,
        },
    )
    os.makedirs(os.path.dirname(args.parallel_out) or ".", exist_ok=True)
    path = save_json(combined, args.parallel_out)
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    failures = _check_parallel(payload)
    if args.update_baseline:
        _write_parallel_baseline(payload, args.parallel_baseline)
    else:
        failures += _check_parallel_baseline(payload, args.parallel_baseline)
    print(render_rows(combined.rows))
    print(f"\nwrote {path}")
    return failures


def _run_service(args, service_load, render_rows, save_json) -> list[str]:
    """Run section 5 (ACQ-as-a-service load generation) and gate it."""
    # Same floor as the sharded arm: below a few thousand rows a full
    # ACQ search is sub-millisecond and the closed-loop sweep measures
    # thread handoff, not the engine.
    result = service_load(scale_rows=max(args.scale_rows, 4000))
    os.makedirs(os.path.dirname(args.service_out) or ".", exist_ok=True)
    path = save_json(result, args.service_out)
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    failures = _check_service(payload)
    if args.update_baseline:
        _write_service_baseline(payload, args.service_baseline)
    else:
        failures += _check_service_baseline(payload, args.service_baseline)
    print(render_rows(result.rows))
    print(f"\nwrote {path}")
    return failures


if __name__ == "__main__":
    sys.exit(main())
