"""Figure 11: ACQUIRE across aggregate types (paper section 8.4.6).

SUM, COUNT and MAX constraints on the same join workload; MIN is
omitted exactly as in the paper (MIN(x) = MAX(-x)). The claim:
"ACQUIRE successfully minimizes refinement and reaches the aggregate
thresholds in all the above aggregates."
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import fig11_aggregate_types


def test_fig11_aggregate_types(benchmark, record_experiment):
    result = run_once(benchmark, fig11_aggregate_types, scale_rows=20_000)
    record_experiment(result)

    attainable = [
        row for row in result.rows if row.extra.get("attainable", True)
    ]
    assert attainable, "every point was skipped?"
    # Every attainable point meets its threshold.
    assert all(row.satisfied for row in attainable)

    # COUNT and SUM cover the full ratio sweep.
    for method in ("COUNT", "SUM"):
        points = [row for row in attainable if row.method == method]
        assert len(points) == 5
        # Figure 11b: refinement grows as the ratio shrinks.
        by_ratio = {row.x_value: row.qscore for row in points}
        assert by_ratio[0.1] >= by_ratio[0.9]

    # MAX appears for the ratios whose target stays inside the
    # attribute domain.
    assert any(row.method == "MAX" for row in attainable)
