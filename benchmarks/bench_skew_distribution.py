"""Section 8.4.4: varying data distributions (Zipf z=0 vs z=1).

The paper re-ran its comparison on skew generated with the
Chaudhuri-Narasayya TPC-D generator and reports "trends in results were
same as above" — the same method ordering for time, error and
refinement on both distributions.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import skew_distribution


def test_skew_distribution(benchmark, record_experiment):
    result = run_once(benchmark, skew_distribution, scale_rows=15_000)
    record_experiment(result)

    for z in (0.0, 1.0):
        rows = {
            row.method: row for row in result.rows if row.x_value == z
        }
        # ACQUIRE meets the constraint on both distributions.
        assert rows["ACQUIRE"].satisfied, f"z={z}"
        assert rows["ACQUIRE"].error <= 0.05 + 1e-9
        # The paper's time ordering: TQGen slowest on both.
        slowest = max(rows.values(), key=lambda row: row.time_ms)
        assert slowest.method == "TQGen", f"z={z}"
        # ACQUIRE's refinement is the smallest on both distributions.
        best_refinement = min(rows.values(), key=lambda row: row.qscore)
        assert best_refinement.method == "ACQUIRE", f"z={z}"
