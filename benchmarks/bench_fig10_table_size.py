"""Figure 10a: execution time vs table size (paper section 8.4.3).

Shapes: every technique's cost grows with table size; the full-scan
techniques (Top-k's global sort, TQGen/BinSearch's full-query probes)
grow fastest, while ACQUIRE's many-tiny-indexed-queries profile is the
flattest — the paper's point that Top-k "can be efficient at
small-sized datasets [but] quickly becomes inefficient as data size
increases".
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import fig10a_table_size


def test_fig10a_table_size(benchmark, record_experiment):
    result = run_once(
        benchmark,
        fig10a_table_size,
        sizes=(1_000, 10_000, 60_000),
        tqgen={"grid_points": 4, "rounds": 3},
    )
    record_experiment(result)

    sizes = sorted({row.x_value for row in result.rows})
    # Full-scan baselines grow with table size.
    for method in ("Top-k", "TQGen"):
        series = dict(result.series(method, "time_ms"))
        assert series[sizes[-1]] > series[sizes[0]]
    # Top-k's *relative* standing degrades as data grows: its time
    # ratio to ACQUIRE worsens from the smallest to the largest table.
    acquire = dict(result.series("ACQUIRE", "time_ms"))
    topk = dict(result.series("Top-k", "time_ms"))
    assert (topk[sizes[-1]] / acquire[sizes[-1]]) > (
        topk[sizes[0]] / acquire[sizes[0]]
    ) * 0.5
    # ACQUIRE stays correct at every size.
    assert all(
        row.satisfied for row in result.rows if row.method == "ACQUIRE"
    )
