"""Table 1: the related-work capability matrix, probed empirically.

The paper's Table 1 contrasts the techniques on supported aggregates,
proximity criteria, cardinality constraints and refined-query output.
Here each implementation is *asked* to process each aggregate and the
matrix is assembled from what actually runs.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import table1_capabilities


def test_table1_capabilities(benchmark, record_experiment):
    result = run_once(benchmark, table1_capabilities)
    record_experiment(result)

    matrix = {row.method: row.extra for row in result.rows}
    # ACQUIRE: COUNT, SUM, MIN, MAX, AVG (+ proximity + query output).
    assert set(matrix["ACQUIRE"]["aggregates"]) == {
        "COUNT", "SUM", "MIN", "MAX", "AVG",
    }
    assert matrix["ACQUIRE"]["proximity"]
    assert matrix["ACQUIRE"]["query_output"]
    # Every baseline is COUNT-only, exactly as the paper's Table 1.
    for baseline in ("Top-k", "TQGen", "BinSearch"):
        assert matrix[baseline]["aggregates"] == ["COUNT"], baseline
    # Tuple-oriented Top-k ranks by proximity but emits no query;
    # the query-oriented baselines emit queries but ignore proximity.
    assert matrix["Top-k"]["proximity"] and not matrix["Top-k"]["query_output"]
    assert matrix["TQGen"]["query_output"] and not matrix["TQGen"]["proximity"]
    assert matrix["BinSearch"]["query_output"]
