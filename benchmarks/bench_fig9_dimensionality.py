"""Figure 9: effect of dimensionality (paper section 8.4.2).

The headline shape: TQGen's query count explodes exponentially with
the number of flexible predicates while ACQUIRE and Top-k degrade far
more gently, and ACQUIRE keeps the lowest refinement scores.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import fig9_dimensionality


def test_fig9_dimensionality(benchmark, record_experiment):
    result = run_once(benchmark, fig9_dimensionality, scale_rows=4_000)
    record_experiment(result)

    tqgen_queries = dict(result.series("TQGen", "queries"))
    dims = sorted(tqgen_queries)
    # Exponential blow-up: query count strictly increasing in d, and
    # the d=max count dwarfs d=1 by orders of magnitude.
    counts = [tqgen_queries[d] for d in dims]
    assert counts == sorted(counts)
    assert counts[-1] >= 50 * counts[0]

    # Top-k's executed-query count stays flat (one ranking query,
    # paper: "execution time remains largely constant").
    topk_queries = [q for _, q in result.series("Top-k", "queries")]
    assert max(topk_queries) <= min(topk_queries) + len(dims) + 2

    # ACQUIRE satisfies the constraint at every dimensionality.
    assert all(
        row.satisfied for row in result.rows if row.method == "ACQUIRE"
    )

    # ACQUIRE's refinement never exceeds the best baseline's by much;
    # on average it is the smallest (paper figure 9c).
    for method in ("Top-k", "TQGen", "BinSearch"):
        factor = result.speedup("qscore", method)
        assert factor is None or factor >= 0.95, (method, factor)
