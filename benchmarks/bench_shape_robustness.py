"""Extension: method ordering across query shapes.

The paper's evaluation uses one query shape (the Q2 star join). This
bench re-runs the four-method comparison on a single wide fact table, a
two-table FK join, and the three-table star to confirm the ordering is
a property of the methods, not of the shape.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import shape_robustness


def test_shape_robustness(benchmark, record_experiment):
    result = run_once(benchmark, shape_robustness, scale_rows=8_000)
    record_experiment(result)

    shapes = {row.x_value for row in result.rows}
    assert shapes == {"single-table", "fk-join", "star-join"}
    for shape in shapes:
        rows = {
            row.method: row for row in result.rows if row.x_value == shape
        }
        assert rows["ACQUIRE"].satisfied, shape
        # ACQUIRE's refinement is the smallest on every shape.
        best = min(rows.values(), key=lambda row: row.qscore)
        assert best.method == "ACQUIRE", shape
        # TQGen is the slowest on every shape.
        slowest = max(rows.values(), key=lambda row: row.time_ms)
        assert slowest.method == "TQGen", shape
