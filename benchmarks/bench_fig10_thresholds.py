"""Figures 10b and 10c: ACQUIRE's internal parameter studies.

10b sweeps the refinement threshold gamma (grid granularity); 10c the
cardinality threshold delta. Both shapes from the paper: "a stringent
cardinality and refinement threshold produces proportional increases
in the ACQUIRE execution time as more queries need to be explored."
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import (
    fig10b_refinement_threshold,
    fig10c_cardinality_threshold,
)


def test_fig10b_refinement_threshold(benchmark, record_experiment):
    result = run_once(
        benchmark, fig10b_refinement_threshold, scale_rows=20_000
    )
    record_experiment(result)

    queries = dict(result.series("ACQUIRE", "queries"))
    gammas = sorted(queries)
    # Finer grids (small gamma) explore strictly more queries; the
    # trend must be monotone non-increasing in gamma.
    counts = [queries[g] for g in gammas]
    assert counts == sorted(counts, reverse=True)
    assert counts[0] >= 5 * counts[-1]
    # All runs still meet the constraint.
    assert all(row.satisfied for row in result.rows)


def test_fig10c_cardinality_threshold(benchmark, record_experiment):
    result = run_once(
        benchmark, fig10c_cardinality_threshold, scale_rows=20_000
    )
    record_experiment(result)

    queries = dict(result.series("ACQUIRE", "queries"))
    deltas = sorted(queries)
    # Tighter delta explores at least as many queries.
    counts = [queries[d] for d in deltas]
    assert counts == sorted(counts, reverse=True)
    # The loosest threshold is satisfied; errors respect each delta
    # whenever satisfied.
    for row in result.rows:
        if row.satisfied:
            assert row.error <= row.x_value + 1e-12
