"""Section 8.4.1's BinSearch critique: refinement-order sensitivity.

"BinSearch is very sensitive to the order in which predicates are
refined; even a single change to the order can change the error by a
factor of 100." Runs all 3! orderings of three flexible predicates
(one a coarse integer attribute) and reports the error spread.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import binsearch_order_sensitivity


def test_binsearch_order_sensitivity(benchmark, record_experiment):
    result = run_once(benchmark, binsearch_order_sensitivity,
                      scale_rows=20_000)
    record_experiment(result)

    errors = [row.error for row in result.rows]
    qscores = [row.qscore for row in result.rows]
    assert len(errors) == 6
    # Orderings genuinely disagree on the produced query.
    assert max(qscores) > min(qscores)
    # ... and on accuracy (the instability the paper highlights).
    assert max(errors) > min(errors)
